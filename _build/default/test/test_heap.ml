(* Unit and property tests for the binary min-heap. *)

open Sdn_sim

let make () = Heap.create ~cmp:compare ()

let test_empty () =
  let h = make () in
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h)

let test_pop_exn_empty () =
  let h = make () in
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_ordering () =
  let h = make () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 0 ];
  let drained = List.init 7 (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 1; 3; 4; 5; 9 ] drained;
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let test_peek_does_not_remove () =
  let h = make () in
  Heap.push h 2;
  Heap.push h 1;
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  Alcotest.(check int) "length unchanged" 2 (Heap.length h)

let test_growth_beyond_capacity () =
  let h = Heap.create ~capacity:2 ~cmp:compare () in
  for i = 100 downto 1 do
    Heap.push h i
  done;
  Alcotest.(check int) "length" 100 (Heap.length h);
  Alcotest.(check (option int)) "min" (Some 1) (Heap.peek h)

let test_clear () =
  let h = make () in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h);
  Heap.push h 7;
  Alcotest.(check (option int)) "usable after clear" (Some 7) (Heap.pop h)

let test_custom_comparator () =
  let h = Heap.create ~cmp:(fun a b -> compare b a) () in
  List.iter (Heap.push h) [ 1; 3; 2 ];
  Alcotest.(check (option int)) "max-heap" (Some 3) (Heap.pop h)

let test_to_list_contents () =
  let h = make () in
  List.iter (Heap.push h) [ 4; 2; 7 ];
  Alcotest.(check (list int)) "contents" [ 2; 4; 7 ]
    (List.sort compare (Heap.to_list h))

let prop_heap_sort =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = make () in
      List.iter (Heap.push h) xs;
      let drained = List.filter_map (fun _ -> Heap.pop h) xs in
      drained = List.sort compare xs)

let prop_interleaved =
  QCheck.Test.make ~name:"interleaved push/pop preserves min property"
    ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = make () in
      let model = ref [] in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            Heap.push h v;
            model := List.sort compare (v :: !model);
            true
          end
          else begin
            match (Heap.pop h, !model) with
            | None, [] -> true
            | Some x, m :: rest ->
                model := rest;
                x = m
            | None, _ :: _ | Some _, [] -> false
          end)
        ops)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "pop_exn on empty raises" `Quick test_pop_exn_empty;
    Alcotest.test_case "pops in sorted order" `Quick test_ordering;
    Alcotest.test_case "peek does not remove" `Quick test_peek_does_not_remove;
    Alcotest.test_case "grows beyond capacity" `Quick test_growth_beyond_capacity;
    Alcotest.test_case "clear then reuse" `Quick test_clear;
    Alcotest.test_case "custom comparator" `Quick test_custom_comparator;
    Alcotest.test_case "to_list contents" `Quick test_to_list_contents;
    QCheck_alcotest.to_alcotest prop_heap_sort;
    QCheck_alcotest.to_alcotest prop_interleaved;
  ]
