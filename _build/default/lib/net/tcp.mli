(** TCP header (fixed 20-byte form, no options) with pseudo-header
    checksum. Enough of TCP to model connection setup (SYN / SYN-ACK /
    ACK), data segments and teardown in the paper's Section VI
    discussion experiments; no retransmission state machine lives here
    (see [Sdn_traffic.Patterns]). *)

type flags = {
  fin : bool;
  syn : bool;
  rst : bool;
  psh : bool;
  ack : bool;
  urg : bool;
}

val no_flags : flags
val flags_syn : flags
val flags_syn_ack : flags
val flags_ack : flags
val flags_fin_ack : flags
val flags_psh_ack : flags

type t = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack_seq : int32;
  flags : flags;
  window : int;
}

val size : int
(** 20 bytes. *)

val write :
  t -> src_ip:Ip.t -> dst_ip:Ip.t -> payload:Bytes.t -> Bytes.t -> int -> unit
(** Serialize header plus checksum; [payload] must already be in place
    at [off + size]. *)

val read :
  Bytes.t -> int -> len:int -> src_ip:Ip.t -> dst_ip:Ip.t ->
  (t * int, string) result
(** Parse a segment occupying [len] bytes; returns
    [(header, payload_len)]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
