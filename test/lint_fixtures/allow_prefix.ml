(* Dirty fixture: the waiver token is a prefix of the rule name, not
   the whole token, so it must NOT suppress — the wall-clock finding
   stays visible and the comment itself is reported as a stale allow
   that names no catalogued rule. *)

(* lint: allow wall *)
let now () = Unix.gettimeofday ()
