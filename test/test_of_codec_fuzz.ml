(* Codec fuzzing: random messages over every constructor roundtrip
   through encode/decode, and mutilated buffers (truncated or
   bit-flipped) always come back as [Error _] or a decoded message —
   never an exception. *)

open Sdn_openflow
open Sdn_net
module Gen = QCheck.Gen

(* {2 Generators} *)

let gen_ascii n = Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 0 n))
let gen_bytes n = Gen.(map Bytes.of_string (string_size (int_range 0 n)))
let gen_u16 = Gen.int_range 0 0xFFFF
let gen_u8 = Gen.int_range 0 0xFF
let gen_i32 = Gen.(map Int32.of_int (int_range 0 0x3FFFFFFF))
let gen_i64 = Gen.(map Int64.of_int (int_range 0 0x3FFFFFFF))

let gen_mac =
  Gen.(
    map
      (fun (a, b, c, d, e, f) -> Mac.of_octets a b c d e f)
      (tup6 gen_u8 gen_u8 gen_u8 gen_u8 gen_u8 gen_u8))

let gen_ip =
  Gen.(map (fun (a, b, c, d) -> Ip.make a b c d) (tup4 gen_u8 gen_u8 gen_u8 gen_u8))

let gen_match =
  Gen.(
    let opt g = oneof [ return None; map Option.some g ] in
    map
      (fun ( (in_port, dl_src, dl_dst, dl_vlan, dl_vlan_pcp, dl_type),
             (nw_tos, nw_proto, nw_src, nw_dst, tp_src, tp_dst) ) ->
        {
          Of_match.in_port;
          dl_src;
          dl_dst;
          dl_vlan;
          dl_vlan_pcp;
          dl_type;
          nw_tos;
          nw_proto;
          nw_src;
          nw_dst;
          tp_src;
          tp_dst;
        })
      (tup2
         (tup6 (opt gen_u16) (opt gen_mac) (opt gen_mac)
            (opt (int_range 0 0xFFF))
            (opt (int_range 0 7))
            (opt gen_u16))
         (tup6 (opt gen_u8) (opt gen_u8)
            (opt (tup2 gen_ip (int_range 1 32)))
            (opt (tup2 gen_ip (int_range 1 32)))
            (opt gen_u16) (opt gen_u16))))

let gen_action =
  Gen.(
    oneof
      [
        map (fun (port, max_len) -> Of_action.Output { port; max_len })
          (tup2 gen_u16 gen_u16);
        map (fun v -> Of_action.Set_vlan_vid v) (int_range 0 0xFFF);
        map (fun v -> Of_action.Set_vlan_pcp v) (int_range 0 7);
        return Of_action.Strip_vlan;
        map (fun m -> Of_action.Set_dl_src m) gen_mac;
        map (fun m -> Of_action.Set_dl_dst m) gen_mac;
        map (fun ip -> Of_action.Set_nw_src ip) gen_ip;
        map (fun ip -> Of_action.Set_nw_dst ip) gen_ip;
        map (fun v -> Of_action.Set_nw_tos v) gen_u8;
        map (fun v -> Of_action.Set_tp_src v) gen_u16;
        map (fun v -> Of_action.Set_tp_dst v) gen_u16;
        map (fun (port, queue_id) -> Of_action.Enqueue { port; queue_id })
          (tup2 gen_u16 gen_i32);
      ])

let gen_actions = Gen.(list_size (int_range 0 4) gen_action)

let gen_error =
  Gen.(
    map
      (fun (error_type, code, data) -> { Of_error.error_type; code; data })
      (tup3
         (oneofl
            [
              Of_error.Hello_failed;
              Of_error.Bad_request;
              Of_error.Bad_action;
              Of_error.Flow_mod_failed;
              Of_error.Port_mod_failed;
              Of_error.Queue_op_failed;
            ])
         gen_u16 (gen_bytes 64)))

let gen_phy_port =
  Gen.(
    map
      (fun (port_no, hw_addr, name) -> { Of_features.port_no; hw_addr; name })
      (tup3 gen_u16 gen_mac (gen_ascii 15)))

let gen_features =
  Gen.(
    map
      (fun (datapath_id, n_buffers, n_tables, ports) ->
        Of_features.make ~datapath_id ~n_buffers ~n_tables ~ports)
      (tup4 gen_i64 (int_range 0 0xFFFF) gen_u8
         (list_size (int_range 0 4) gen_phy_port)))

let gen_config =
  Gen.(
    map
      (fun (flags, miss_send_len) -> { Of_config.flags; miss_send_len })
      (tup2 (int_range 0 3) gen_u16))

let gen_packet_in =
  Gen.(
    map
      (fun (buffer_id, total_len, in_port, reason, data) ->
        { Of_packet_in.buffer_id; total_len; in_port; reason; data })
      (tup5
         (oneof [ gen_i32; return Of_wire.no_buffer ])
         gen_u16 gen_u16
         (oneofl [ Of_packet_in.No_match; Of_packet_in.Action ])
         (gen_bytes 96)))

let gen_flow_removed =
  Gen.(
    map
      (fun ( (match_, cookie, priority, reason),
             (duration_sec, duration_nsec, idle_timeout, packet_count, byte_count)
           ) ->
        {
          Of_flow_removed.match_;
          cookie;
          priority;
          reason;
          duration_sec;
          duration_nsec;
          idle_timeout;
          packet_count;
          byte_count;
        })
      (tup2
         (tup4 gen_match gen_i64 gen_u16
            (oneofl
               [
                 Of_flow_removed.Idle_timeout;
                 Of_flow_removed.Hard_timeout;
                 Of_flow_removed.Delete;
               ]))
         (tup5 gen_i32 gen_i32 gen_u16 gen_i64 gen_i64)))

let gen_port_status =
  Gen.(
    map
      (fun (reason, port, link_down) -> { Of_port_status.reason; port; link_down })
      (tup3
         (oneofl
            [ Of_port_status.Add; Of_port_status.Delete; Of_port_status.Modify ])
         gen_phy_port bool))

let gen_packet_out =
  Gen.(
    oneof
      [
        (* Release of a buffered packet: no payload. *)
        map
          (fun (buffer_id, in_port, actions) ->
            { Of_packet_out.buffer_id; in_port; actions; data = Bytes.empty })
          (tup3 gen_i32 gen_u16 gen_actions);
        (* Full frame carried back (no-buffer case). *)
        map
          (fun (in_port, actions, data) ->
            { Of_packet_out.buffer_id = Of_wire.no_buffer; in_port; actions; data })
          (tup3 gen_u16 gen_actions (gen_bytes 96));
      ])

let gen_flow_mod =
  Gen.(
    map
      (fun ( (match_, cookie, command, idle_timeout, hard_timeout, priority),
             (buffer_id, out_port, send_flow_rem, check_overlap, actions) ) ->
        {
          Of_flow_mod.match_;
          cookie;
          command;
          idle_timeout;
          hard_timeout;
          priority;
          buffer_id;
          out_port;
          send_flow_rem;
          check_overlap;
          actions;
        })
      (tup2
         (tup6 gen_match gen_i64
            (oneofl
               [
                 Of_flow_mod.Add;
                 Of_flow_mod.Modify;
                 Of_flow_mod.Modify_strict;
                 Of_flow_mod.Delete;
                 Of_flow_mod.Delete_strict;
               ])
            gen_u16 gen_u16 gen_u16)
         (tup5
            (oneof [ gen_i32; return Of_wire.no_buffer ])
            gen_u16 bool bool gen_actions)))

let gen_stats_request =
  Gen.(
    oneof
      [
        return Of_stats.Desc_request;
        map
          (fun (match_, table_id, out_port) ->
            Of_stats.Flow_request { match_; table_id; out_port })
          (tup3 gen_match gen_u8 gen_u16);
        map
          (fun (match_, table_id, out_port) ->
            Of_stats.Aggregate_request { match_; table_id; out_port })
          (tup3 gen_match gen_u8 gen_u16);
        map (fun port_no -> Of_stats.Port_request { port_no }) gen_u16;
      ])

let gen_flow_stats =
  Gen.(
    map
      (fun ( (table_id, match_, duration_sec, duration_nsec, priority),
             (idle_timeout, hard_timeout, cookie, packet_count, byte_count),
             actions ) ->
        {
          Of_stats.table_id;
          match_;
          duration_sec;
          duration_nsec;
          priority;
          idle_timeout;
          hard_timeout;
          cookie;
          packet_count;
          byte_count;
          actions;
        })
      (tup3
         (tup5 gen_u8 gen_match gen_i32 gen_i32 gen_u16)
         (tup5 gen_u16 gen_u16 gen_i64 gen_i64 gen_i64)
         gen_actions))

let gen_port_stats =
  Gen.(
    map
      (fun (port_no, (rx_packets, tx_packets, rx_bytes, tx_bytes),
            (rx_dropped, tx_dropped, rx_errors, tx_errors)) ->
        {
          Of_stats.port_no;
          rx_packets;
          tx_packets;
          rx_bytes;
          tx_bytes;
          rx_dropped;
          tx_dropped;
          rx_errors;
          tx_errors;
        })
      (tup3 gen_u16
         (tup4 gen_i64 gen_i64 gen_i64 gen_i64)
         (tup4 gen_i64 gen_i64 gen_i64 gen_i64)))

let gen_stats_reply =
  Gen.(
    oneof
      [
        map
          (fun (mfr_desc, hw_desc, sw_desc, serial_num, dp_desc) ->
            Of_stats.Desc_reply { mfr_desc; hw_desc; sw_desc; serial_num; dp_desc })
          (tup5 (gen_ascii 20) (gen_ascii 20) (gen_ascii 20) (gen_ascii 20)
             (gen_ascii 20));
        map (fun l -> Of_stats.Flow_reply l) (list_size (int_range 0 3) gen_flow_stats);
        map
          (fun (packet_count, byte_count, flow_count) ->
            Of_stats.Aggregate_reply { packet_count; byte_count; flow_count })
          (tup3 gen_i64 gen_i64 gen_i32);
        map (fun l -> Of_stats.Port_reply l) (list_size (int_range 0 3) gen_port_stats);
      ])

(* Backoff durations are encoded as whole milliseconds, the multiplier
   as thousandths; generate on-grid values so roundtrips are exact. *)
let gen_vendor =
  Gen.(
    oneof
      [
        map
          (fun (timeout_ms, mult_milli, cap_ms, max_resends) ->
            Of_ext.Flow_buffer_enable
              {
                Of_ext.timeout = float_of_int timeout_ms /. 1000.0;
                multiplier = float_of_int (1000 + mult_milli) /. 1000.0;
                cap = float_of_int cap_ms /. 1000.0;
                max_resends;
              })
          (tup4 (int_range 1 60_000) (int_range 0 9000) (int_range 1 600_000)
             (int_range 0 100));
        return Of_ext.Flow_buffer_disable;
        return Of_ext.Flow_buffer_stats_request;
        map
          (fun (units_in_use, units_total, flows_buffered, packets_buffered, resends) ->
            Of_ext.Flow_buffer_stats_reply
              { Of_ext.units_in_use; units_total; flows_buffered; packets_buffered; resends })
          (tup5 gen_u16 gen_u16 gen_u16 gen_u16 gen_u16);
      ])

(* One generator spanning all 19 [Of_codec.msg] constructors. *)
let gen_msg =
  Gen.(
    oneof
      [
        return Of_codec.Hello;
        map (fun e -> Of_codec.Error_msg e) gen_error;
        map (fun b -> Of_codec.Echo_request b) (gen_bytes 32);
        map (fun b -> Of_codec.Echo_reply b) (gen_bytes 32);
        map (fun v -> Of_codec.Vendor v) gen_vendor;
        return Of_codec.Features_request;
        map (fun f -> Of_codec.Features_reply f) gen_features;
        return Of_codec.Get_config_request;
        map (fun c -> Of_codec.Get_config_reply c) gen_config;
        map (fun c -> Of_codec.Set_config c) gen_config;
        map (fun p -> Of_codec.Packet_in p) gen_packet_in;
        map (fun f -> Of_codec.Flow_removed f) gen_flow_removed;
        map (fun p -> Of_codec.Port_status p) gen_port_status;
        map (fun p -> Of_codec.Packet_out p) gen_packet_out;
        map (fun f -> Of_codec.Flow_mod f) gen_flow_mod;
        map (fun r -> Of_codec.Stats_request r) gen_stats_request;
        map (fun r -> Of_codec.Stats_reply r) gen_stats_reply;
        return Of_codec.Barrier_request;
        return Of_codec.Barrier_reply;
      ])

let arb_msg = QCheck.make ~print:(Format.asprintf "%a" Of_codec.pp) gen_msg

(* {2 Properties} *)

let prop_roundtrip =
  QCheck.Test.make ~name:"random message roundtrips" ~count:500 arb_msg
    (fun msg ->
      match Of_codec.decode (Of_codec.encode ~xid:77l msg) with
      | Ok (77l, msg') -> Of_codec.equal msg msg'
      | Ok _ -> false
      | Error e -> QCheck.Test.fail_reportf "decode error: %s" e)

let decode_no_raise buf =
  match Of_codec.decode buf with
  | Ok _ -> `Ok
  | Error _ -> `Error
  | exception e ->
      QCheck.Test.fail_reportf "decode raised %s" (Printexc.to_string e)

let prop_truncation =
  QCheck.Test.make ~name:"truncated buffers decode to Error" ~count:500
    QCheck.(pair arb_msg (float_bound_inclusive 1.0))
    (fun (msg, cut_frac) ->
      let full = Of_codec.encode ~xid:1l msg in
      (* A strict prefix: the header's length field now exceeds the
         buffer (or the header itself is incomplete). *)
      let cut =
        min (Bytes.length full - 1)
          (int_of_float (cut_frac *. float_of_int (Bytes.length full)))
      in
      decode_no_raise (Bytes.sub full 0 (max 0 cut)) = `Error)

let prop_corruption_no_raise =
  QCheck.Test.make ~name:"corrupted buffers never raise" ~count:1000
    QCheck.(triple arb_msg (small_list (pair small_nat small_nat)) small_nat)
    (fun (msg, flips, extra) ->
      let buf = Of_codec.encode ~xid:9l msg in
      (* Flip random bytes in place... *)
      List.iter
        (fun (pos, value) ->
          if Bytes.length buf > 0 then
            Bytes.set_uint8 buf (pos mod Bytes.length buf) (value land 0xFF))
        flips;
      (* ...and optionally append garbage so the length field disagrees
         with the buffer in the other direction too. *)
      let buf =
        if extra mod 3 = 0 then Bytes.cat buf (Bytes.make (extra mod 16) '\xAA')
        else buf
      in
      ignore (decode_no_raise buf);
      true)

(* The allocation-free entry points must be bit-for-bit equivalent to
   the allocating ones, whatever was in the target buffer beforehand. *)
let prop_encode_into_identical =
  QCheck.Test.make ~name:"encode_into is byte-identical to encode" ~count:500
    QCheck.(pair arb_msg (int_bound 64))
    (fun (msg, pos) ->
      let reference = Of_codec.encode ~xid:42l msg in
      let buf = Bytes.make (pos + Of_codec.size msg + 16) '\xFF' in
      let len = Of_codec.encode_into ~xid:42l msg buf ~pos in
      len = Bytes.length reference
      && Bytes.equal reference (Bytes.sub buf pos len)
      (* Bytes outside the window stay untouched. *)
      && (pos = 0 || Bytes.get_uint8 buf (pos - 1) = 0xFF)
      && Bytes.get_uint8 buf (pos + len) = 0xFF)

let prop_encode_scratch_identical =
  QCheck.Test.make ~name:"scratch encode reuses its buffer, same bytes"
    ~count:300
    QCheck.(pair arb_msg arb_msg)
    (fun (m1, m2) ->
      let scratch = Of_wire.Scratch.create ~capacity:16 () in
      let check msg =
        let reference = Of_codec.encode ~xid:7l msg in
        let len = Of_codec.encode_scratch scratch ~xid:7l msg in
        let buf = Of_wire.Scratch.buffer scratch in
        len = Bytes.length reference && Bytes.equal reference (Bytes.sub buf 0 len)
      in
      (* Encoding a second message over the first must not leak stale
         bytes from the larger previous encoding. *)
      check m1 && check m2 && check m1)

let prop_decode_sub_in_place =
  QCheck.Test.make ~name:"decode_sub parses mid-buffer without copying"
    ~count:500
    QCheck.(triple arb_msg (int_bound 32) (int_bound 32))
    (fun (msg, before, after) ->
      let encoded = Of_codec.encode ~xid:5l msg in
      let len = Bytes.length encoded in
      (* Surround the message with garbage on both sides. *)
      let buf = Bytes.make (before + len + after) '\xEE' in
      Bytes.blit encoded 0 buf before len;
      match Of_codec.decode_sub buf ~pos:before ~len with
      | Ok (5l, msg') -> Of_codec.equal msg msg'
      | Ok _ -> false
      | Error e -> QCheck.Test.fail_reportf "decode_sub error: %s" e)

(* Deterministic single-example roundtrip over each of the 19
   constructors, so a codec regression names the constructor instead of
   a shrunk counterexample. *)
let test_each_constructor () =
  let sample gen = Gen.generate1 ~rand:(Random.State.make [| 7 |]) gen in
  let msgs =
    [
      Of_codec.Hello;
      Of_codec.Error_msg (sample gen_error);
      Of_codec.Echo_request (Bytes.of_string "ping");
      Of_codec.Echo_reply (Bytes.of_string "pong");
      Of_codec.Vendor (sample gen_vendor);
      Of_codec.Features_request;
      Of_codec.Features_reply (sample gen_features);
      Of_codec.Get_config_request;
      Of_codec.Get_config_reply (sample gen_config);
      Of_codec.Set_config (sample gen_config);
      Of_codec.Packet_in (sample gen_packet_in);
      Of_codec.Flow_removed (sample gen_flow_removed);
      Of_codec.Port_status (sample gen_port_status);
      Of_codec.Packet_out (sample gen_packet_out);
      Of_codec.Flow_mod (sample gen_flow_mod);
      Of_codec.Stats_request (sample gen_stats_request);
      Of_codec.Stats_reply (sample gen_stats_reply);
      Of_codec.Barrier_request;
      Of_codec.Barrier_reply;
    ]
  in
  Alcotest.(check int) "all 19 constructors covered" 19 (List.length msgs);
  List.iteri
    (fun i msg ->
      match Of_codec.decode (Of_codec.encode ~xid:(Int32.of_int i) msg) with
      | Ok (_, msg') ->
          Alcotest.(check bool)
            (Format.asprintf "roundtrip %a" Of_codec.pp msg)
            true (Of_codec.equal msg msg')
      | Error e -> Alcotest.fail (Format.asprintf "%a: %s" Of_codec.pp msg e))
    msgs

let suite =
  [
    Alcotest.test_case "each constructor roundtrips" `Quick test_each_constructor;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_encode_into_identical;
    QCheck_alcotest.to_alcotest prop_encode_scratch_identical;
    QCheck_alcotest.to_alcotest prop_decode_sub_in_place;
    QCheck_alcotest.to_alcotest prop_truncation;
    QCheck_alcotest.to_alcotest prop_corruption_no_raise;
  ]
