open Sdn_sim
open Sdn_net
open Sdn_measure

type t = {
  engine : Engine.t;
  switches : Sdn_switch.Switch.t array;
  controller : Sdn_controller.Controller.t;
  capture : Capture.t;
  delay : Delay.t;
  host1_link : Bytes.t Link.t;
  traffic_rng : Rng.t;
  mutable host2_received : int;
}

let host1_ip = Ip.make 10 0 0 1
let host2_ip = Ip.make 10 0 0 2

let data_link engine ~name ~receiver ?capture () =
  Link.create engine ~name ~bandwidth_bps:Calibration.data_link_bandwidth_bps
    ~propagation_s:Calibration.data_link_latency ?capture ~receiver ()

let build (config : Config.t) ~n_switches =
  if n_switches < 1 then invalid_arg "Chain.build: need at least one switch";
  let engine = Engine.create () in
  let root_rng = Rng.of_int config.Config.seed in
  let traffic_rng = Rng.split root_rng in
  let controller_rng = Rng.split root_rng in
  let capture = Capture.create ~encap_overhead:Calibration.encap_overhead_bytes () in
  let delay = Delay.create () in
  let addressing = Sdn_traffic.Addressing.default in
  let app =
    Sdn_controller.Apps.forwarding
      ~hosts:
        [
          (host1_ip, addressing.Sdn_traffic.Addressing.src_mac, 1);
          (host2_ip, addressing.Sdn_traffic.Addressing.dst_mac, 2);
        ]
      ~idle_timeout:config.Config.rule_idle_timeout ()
  in
  let controller =
    Sdn_controller.Controller.create engine ~app
      ~costs:config.Config.controller_costs ~rng:controller_rng
      ~release_strategy:config.Config.release_strategy ()
  in
  let switches =
    Array.init n_switches (fun i ->
        let switch_config =
          {
            Sdn_switch.Switch.default_config with
            Sdn_switch.Switch.datapath_id = Int64.of_int (i + 1);
            mechanism = config.Config.mechanism;
            buffer_capacity = max 1 config.Config.buffer_capacity;
            miss_send_len = config.Config.miss_send_len;
            resend_timeout = config.Config.resend_timeout;
            flow_table_capacity = config.Config.flow_table_capacity;
          }
        in
        let switch_config =
          if config.Config.buffer_capacity = 0 then
            {
              switch_config with
              Sdn_switch.Switch.mechanism = Sdn_switch.Switch.No_buffer;
            }
          else switch_config
        in
        Sdn_switch.Switch.create engine ~config:switch_config
          ~costs:config.Config.switch_costs ~rng:(Rng.split root_rng) ())
  in
  let chain = ref None in
  let get () = Option.get !chain in
  (* Host1 -> sw1: the end-to-end ingress tap lives here. *)
  let host1_link =
    data_link engine ~name:"host1->sw1"
      ~receiver:(fun frame ->
        Delay.on_switch_ingress delay ~time:(Engine.now engine) frame;
        Sdn_switch.Switch.handle_frame switches.(0) ~in_port:1 frame)
      ()
  in
  (* Inter-switch and host-facing data links. Port 1 egress goes
     upstream, port 2 egress goes downstream. *)
  for i = 0 to n_switches - 1 do
    let downstream_receiver =
      if i = n_switches - 1 then fun (_ : Bytes.t) ->
        let c = get () in
        c.host2_received <- c.host2_received + 1
      else fun frame -> Sdn_switch.Switch.handle_frame switches.(i + 1) ~in_port:1 frame
    in
    let downstream_capture =
      (* The end-to-end egress tap sits on the LAST switch only. *)
      if i = n_switches - 1 then
        Some (fun ~time ~size:_ frame -> Delay.on_switch_egress delay ~time frame)
      else None
    in
    let to_downstream =
      data_link engine
        ~name:(Printf.sprintf "sw%d->down" (i + 1))
        ?capture:downstream_capture ~receiver:downstream_receiver ()
    in
    let upstream_receiver =
      if i = 0 then fun (_ : Bytes.t) -> () (* frames back to host1 *)
      else fun frame -> Sdn_switch.Switch.handle_frame switches.(i - 1) ~in_port:2 frame
    in
    let to_upstream =
      data_link engine
        ~name:(Printf.sprintf "sw%d->up" (i + 1))
        ~receiver:upstream_receiver ()
    in
    Sdn_switch.Switch.set_port switches.(i) ~port:1 to_upstream;
    Sdn_switch.Switch.set_port switches.(i) ~port:2 to_downstream
  done;
  (* One control channel per switch, all observed by the same capture
     and delay tracker (switch xid blocks keep requests distinct). *)
  let control_loss_rng = Rng.split root_rng in
  for i = 0 to n_switches - 1 do
    let loss =
      if config.Config.control_loss_rate > 0.0 then
        Some (config.Config.control_loss_rate, Rng.split control_loss_rng)
      else None
    in
    let to_controller =
      Link.create engine
        ~name:(Printf.sprintf "sw%d->controller" (i + 1))
        ~bandwidth_bps:Calibration.control_link_bandwidth_bps
        ~propagation_s:Calibration.control_link_latency ?loss
        ~capture:(fun ~time ~size:_ buf ->
          Capture.observe capture Capture.To_controller ~time buf;
          Delay.on_to_controller delay ~time buf)
        ~receiver:(fun buf ->
          Sdn_controller.Controller.handle_message_from controller ~switch:i buf)
        ()
    in
    let to_switch =
      Link.create engine
        ~name:(Printf.sprintf "controller->sw%d" (i + 1))
        ~bandwidth_bps:Calibration.control_link_bandwidth_bps
        ~propagation_s:Calibration.control_link_latency ?loss
        ~capture:(fun ~time ~size:_ buf ->
          Capture.observe capture Capture.To_switch ~time buf)
        ~receiver:(fun buf ->
          Delay.on_to_switch delay ~time:(Engine.now engine) buf;
          Sdn_switch.Switch.handle_of_message switches.(i) buf)
        ()
    in
    Sdn_switch.Switch.set_controller_link switches.(i) to_controller;
    Sdn_controller.Controller.add_switch controller ~switch:i to_switch;
    Sdn_switch.Switch.start switches.(i)
  done;
  for i = 0 to n_switches - 1 do
    let enable_flow_buffer =
      match config.Config.mechanism with
      | Config.Flow_granularity ->
          Some
            {
              Sdn_openflow.Of_ext.timeout = config.Config.resend_timeout;
              multiplier = config.Config.resend_multiplier;
              cap = config.Config.resend_cap;
              max_resends = config.Config.max_resends;
            }
      | Config.No_buffer | Config.Packet_granularity -> None
    in
    Sdn_controller.Controller.start_switch controller ~switch:i
      ?enable_flow_buffer ~miss_send_len:config.Config.miss_send_len ()
  done;
  let c =
    {
      engine;
      switches;
      controller;
      capture;
      delay;
      host1_link;
      traffic_rng;
      host2_received = 0;
    }
  in
  chain := Some c;
  c

let inject t frame = Link.send t.host1_link ~size:(Bytes.length frame) frame

let run_until_quiet ?(grace = 2.0) ?(min_time = 0.0) t =
  let rec loop rounds limit =
    Engine.run ~until:limit t.engine;
    if rounds < 10 && t.host2_received < Delay.packets_in t.delay then
      loop (rounds + 1) (limit +. grace)
  in
  loop 0 (Float.max min_time (Engine.now t.engine) +. grace)

type result = {
  n_switches : int;
  setup_delay : Experiment.summary;
  ctrl_load_up_mbps : float;
  ctrl_load_down_mbps : float;
  pkt_ins : int;
  packets_in : int;
  packets_out : int;
}

let run (config : Config.t) ~n_switches =
  let chain = build config ~n_switches in
  let injections =
    match config.Config.workload with
    | Config.Exp_a { n_flows } ->
        Sdn_traffic.Patterns.exp_a ~rng:chain.traffic_rng ~start:0.05 ~n_flows
          ~rate_mbps:config.Config.rate_mbps
          ~frame_size:config.Config.frame_size ()
    | Config.Exp_b { n_flows; packets_per_flow; concurrent } ->
        Sdn_traffic.Patterns.exp_b ~rng:chain.traffic_rng ~start:0.05 ~n_flows
          ~packets_per_flow ~concurrent ~rate_mbps:config.Config.rate_mbps
          ~frame_size:config.Config.frame_size ()
    | Config.Udp_burst { n_packets } ->
        Sdn_traffic.Patterns.udp_burst ~rng:chain.traffic_rng ~start:0.05
          ~n_packets ~rate_mbps:config.Config.rate_mbps
          ~frame_size:config.Config.frame_size ()
    | Config.Poisson_flows { n_flows } ->
        Sdn_traffic.Patterns.poisson_flows ~rng:chain.traffic_rng ~start:0.05
          ~n_flows ~rate_mbps:config.Config.rate_mbps
          ~frame_size:config.Config.frame_size ()
    | Config.Poisson_mix { n_packets; miss_fraction } ->
        Sdn_traffic.Patterns.poisson_mix ~rng:chain.traffic_rng ~start:0.05
          ~n_packets ~miss_fraction ~rate_mbps:config.Config.rate_mbps
          ~frame_size:config.Config.frame_size ()
  in
  let plan = Sdn_traffic.Pktgen.stats_of injections in
  Sdn_traffic.Pktgen.schedule chain.engine
    ~inject:(fun ~in_port:_ frame -> inject chain frame)
    injections;
  run_until_quiet ~min_time:plan.Sdn_traffic.Pktgen.last chain;
  let window_end =
    Float.max
      (Delay.last_egress_time chain.delay)
      (Option.value ~default:plan.Sdn_traffic.Pktgen.last
         (Capture.last_time chain.capture Capture.To_switch))
  in
  let window = Float.max 1e-9 (window_end -. plan.Sdn_traffic.Pktgen.first) in
  let pkt_ins =
    Array.fold_left
      (fun acc sw ->
        acc + (Sdn_switch.Switch.counters sw).Sdn_switch.Switch.pkt_ins_sent)
      0 chain.switches
  in
  {
    n_switches;
    setup_delay = Experiment.summary_of_stats (Delay.flow_setup_delays chain.delay);
    ctrl_load_up_mbps = Capture.load_mbps chain.capture Capture.To_controller ~window;
    ctrl_load_down_mbps = Capture.load_mbps chain.capture Capture.To_switch ~window;
    pkt_ins;
    packets_in = Delay.packets_in chain.delay;
    packets_out = chain.host2_received;
  }

let pp_result fmt r =
  Format.fprintf fmt
    "chain{%d switches: setup mean=%.3fms, ctrl %.2f/%.2f Mbps, %d requests, \
     %d/%d delivered}"
    r.n_switches
    (r.setup_delay.Experiment.mean *. 1e3)
    r.ctrl_load_up_mbps r.ctrl_load_down_mbps r.pkt_ins r.packets_out
    r.packets_in
