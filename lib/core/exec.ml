(* The one funnel every sweep's replications run through. Parallelism
   lives here and in Sdn_sim.Task_pool; the sweeps themselves only
   build configuration arrays and zip results back. *)

open Sdn_sim

(* Deterministic sample for the sequential replay: spread by the seed
   so different sweeps probe different grid positions, identical across
   runs of the same sweep. 7919 (a prime) decorrelates adjacent seeds. *)
let replay_index configs =
  let n = Array.length configs in
  if n = 0 then 0 else abs (configs.(0).Config.seed * 7919) mod n

(* Re-run task [idx] in the calling domain and compare field-for-field.
   On mismatch, record a parallel-equivalence violation on that task's
   result so it reaches the CLI's --check epilogue; on agreement leave
   the array untouched (clean parallel output must stay byte-identical
   to sequential output). *)
let cross_check ~label configs (results : Experiment.result array) =
  let idx = replay_index configs in
  let replay = Experiment.run configs.(idx) in
  match Experiment.diff_result results.(idx) replay with
  | [] -> ()
  | mismatched_fields ->
      let ledger = Sdn_check.Check.create () in
      Sdn_check.Check.note_parallel_replay ledger ~time:0.0 ~task:(label idx)
        ~equal:false
        ~detail:(String.concat ", " mismatched_fields);
      let r = results.(idx) in
      let report = Sdn_check.Check.report ledger in
      results.(idx) <-
        {
          r with
          Experiment.check_violations = r.Experiment.check_violations + 1;
          check_report =
            Some
              (match r.Experiment.check_report with
              | None -> report
              | Some existing -> existing ^ report);
        }

let run_experiments ?(label = Printf.sprintf "task-%d") ~jobs configs =
  let tasks = Array.length configs in
  let results =
    Task_pool.run ~jobs ~tasks (fun i -> Experiment.run configs.(i))
  in
  if jobs > 1 && tasks > 0 && Array.exists (fun c -> c.Config.check) configs
  then cross_check ~label configs results;
  results
