(** Rate sweeps with repetitions — the paper's methodology: every
    sending rate from 5 to 100 Mbps in 5 Mbps steps, 20 repetitions
    per point. *)

type point = { rate_mbps : float; results : Experiment.result list }

type series = { label : string; points : point list }

val default_rates : float list
(** [5; 10; ...; 100]. *)

val run :
  label:string ->
  ?rates:float list ->
  ?reps:int ->
  (rate_mbps:float -> seed:int -> Config.t) ->
  series
(** [run ~label make_config] executes [reps] (default 20) runs per
    rate, seeding each repetition differently (and differently across
    rates). *)

val point_mean : point -> (Experiment.result -> float) -> float
val point_sd : point -> (Experiment.result -> float) -> float
val point_max : point -> (Experiment.result -> float) -> float

val series_mean : series -> (Experiment.result -> float) -> float
(** Mean of the metric over every run at every rate — the quantity
    behind the paper's "on average" claims. *)

val series_sd : series -> (Experiment.result -> float) -> float
val series_max : series -> (Experiment.result -> float) -> float

val reduction_pct : baseline:float -> improved:float -> float
(** [(baseline - improved) / baseline * 100]. *)
