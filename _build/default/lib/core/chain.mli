(** Multi-switch extension: a linear chain of switches under one
    controller.

    {v
      Host1 -- [sw1] -- [sw2] -- ... -- [swN] -- Host2
                 \        |              /
                  +--- control channels ---+
                           |
                       Controller
    v}

    The paper's testbed has a single switch, but its motivation is data
    center fabrics where a new flow crosses several hops — and every
    hop's table misses, so flow-setup cost (and the buffer's savings)
    multiply per hop. Each switch has its own control channel to the
    shared controller; the reactive forwarding rules are installed
    hop by hop as the first packet progresses.

    Port convention: port 1 faces Host1 (upstream), port 2 faces Host2
    (downstream), on every switch. *)

open Sdn_sim
open Sdn_measure

type t = {
  engine : Engine.t;
  switches : Sdn_switch.Switch.t array;
  controller : Sdn_controller.Controller.t;
  capture : Capture.t;  (** aggregated over every control channel *)
  delay : Delay.t;
      (** data taps at Host1's ingress (first switch) and the last
          switch's egress; control taps on every channel *)
  host1_link : Bytes.t Link.t;
  traffic_rng : Rng.t;
  mutable host2_received : int;
}

val build : Config.t -> n_switches:int -> t
(** Raises [Invalid_argument] when [n_switches < 1]. *)

val inject : t -> Bytes.t -> unit
(** Send a frame from Host1 toward Host2. *)

val run_until_quiet : ?grace:float -> ?min_time:float -> t -> unit

type result = {
  n_switches : int;
  setup_delay : Experiment.summary;  (** end-to-end, Host1 to Host2 side *)
  ctrl_load_up_mbps : float;  (** summed over every channel *)
  ctrl_load_down_mbps : float;
  pkt_ins : int;  (** summed over every switch *)
  packets_in : int;
  packets_out : int;
}

val run : Config.t -> n_switches:int -> result
(** Run the configured Exp-A/Exp-B/burst workload across the chain. *)

val pp_result : Format.formatter -> result -> unit
