(* Typedtree analyzer: cross-module call graph, Task_pool reachability
   closure, domain-safety race rule, lib/model purity contract. See
   analyze_core.mli for the rule catalog and the approximations. Only
   version-stable Typedtree constructors are matched (Texp_ident,
   Texp_apply, Texp_setfield, Texp_construct, Tstr_value, Tstr_module,
   Tmod_structure, ...); pattern binders come from
   Typedtree.pat_bound_idents so the 5.1/5.2 Tpat_var arity difference
   never reaches this code. *)

type finding = Report_common.finding

let rules =
  [
    ( "par-global",
      "top-level mutable state reachable from a Task_pool task without \
       Atomic mediation" );
    ( "model-mutation",
      "oracle purity: lib/model mutates state that is not function-local" );
    ("model-io", "oracle purity: lib/model performs I/O");
    ( "model-nondet",
      "oracle purity: lib/model reads wall-clock, entropy or domain \
       identity" );
    ( "model-exception",
      "oracle purity: lib/model raises outside its declared domain errors" );
    Report_common.stale_rule;
  ]

type stats = {
  units : int;
  defs : int;
  task_roots : int;
  task_reachable : int;
}

(* ---- Name normalisation ---- *)

module SSet = Set.Make (String)

(* "Sdn_sim__Task_pool" -> "Task_pool", "Dune__exe__Main" -> "Main". *)
let after_last_mangle s =
  let n = String.length s in
  let best = ref None in
  for i = 0 to n - 3 do
    if s.[i] = '_' && s.[i + 1] = '_' && s.[i + 2] <> '_' then best := Some (i + 2)
  done;
  match !best with Some j -> String.sub s j (n - j) | None -> s

(* The library-wrapper module a mangled unit name implies:
   "Sdn_sim__Engine" contributes "Sdn_sim". *)
let wrapper_of_modname modname =
  let n = String.length modname in
  let rec first i =
    if i + 1 >= n then None
    else if modname.[i] = '_' && modname.[i + 1] = '_' then Some i
    else first (i + 1)
  in
  match first 0 with Some i -> Some (String.sub modname 0 i) | None -> None

(* Normalised dotted key for a resolved global path: mangling undone
   per component, a leading [Stdlib] always dropped, a leading library
   wrapper dropped when at least Unit.value remains. *)
let normalize ~wrappers comps =
  let comps = List.map after_last_mangle comps in
  match comps with
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | w :: (_ :: _ :: _ as rest) when SSet.mem w wrappers -> rest
  | comps -> comps

let key_of comps = String.concat "." comps

(* ---- What the walk collects ---- *)

type target = Global of string list | Local of Ident.t

type def = {
  uid : int;
  unit_id : int;
  unit_short : string;
  d_key : string;
  d_file : string;
  d_line : int;
  idents : Ident.t list;
  alloc : string option;  (* normalised mutable-ctor key when the RHS is one *)
  atomic : bool;
  mutable refs : (target * int) list;
  mutable writes : (target * string * int) list;  (* target, operation, line *)
  mutable raises : (string * int) list;  (* constructor name, line *)
}

type unit_info = {
  u_id : int;
  modname : string;
  short : string;
  u_file : string;  (* sourcefile as recorded in the cmt *)
  source_path : string option;  (* resolved on disk, for waiver comments *)
  is_model : bool;
  mutable u_defs : def list;
  mutable u_exns : string list;  (* declared exception constructors *)
}

(* ---- Catalogues of stdlib names (normalised keys) ---- *)

let mutable_ctors =
  SSet.of_list
    [
      "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create";
      "Buffer.create"; "Bytes.create"; "Bytes.make"; "Bytes.of_string";
      "Array.make"; "Array.init"; "Array.create_float"; "Array.of_list";
      "Array.copy"; "Array.append"; "Array.sub"; "Array.concat";
      "Array.make_matrix";
    ]

let atomic_ctor = "Atomic.make"

(* Mutators whose first argument is the mutated value. The Atomic
   subset IS the sanctioned mediation for shared globals, so it is
   exempt from par-global — but still mutation under the model purity
   contract. *)
let atomic_mutators =
  SSet.of_list
    [
      "Atomic.set"; "Atomic.exchange"; "Atomic.compare_and_set";
      "Atomic.fetch_and_add"; "Atomic.incr"; "Atomic.decr";
    ]

let plain_mutators =
  SSet.of_list
    [
      ":="; "incr"; "decr";
      "Array.set"; "Array.unsafe_set"; "Array.fill"; "Array.blit";
      "Array.sort"; "Array.fast_sort"; "Array.stable_sort";
      "Bytes.set"; "Bytes.unsafe_set"; "Bytes.fill"; "Bytes.blit";
      "Bytes.blit_string";
      "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.remove"; "Hashtbl.reset";
      "Hashtbl.clear"; "Hashtbl.filter_map_inplace";
      "Buffer.add_char"; "Buffer.add_string"; "Buffer.add_bytes";
      "Buffer.add_substring"; "Buffer.add_subbytes"; "Buffer.add_buffer";
      "Buffer.clear"; "Buffer.reset"; "Buffer.truncate";
      "Queue.add"; "Queue.push"; "Queue.pop"; "Queue.take"; "Queue.clear";
      "Queue.transfer";
      "Stack.push"; "Stack.pop"; "Stack.clear";
    ]

let is_mutator k = SSet.mem k plain_mutators || SSet.mem k atomic_mutators

(* Most mutators take the mutated structure first; these take the
   element first and the structure last. *)
let mutators_last_arg = SSet.of_list [ "Queue.add"; "Queue.push"; "Stack.push" ]
let raise_fns = SSet.of_list [ "raise"; "raise_notrace" ]

let io_exact =
  SSet.of_list
    [
      "print_string"; "print_char"; "print_bytes"; "print_int";
      "print_float"; "print_endline"; "print_newline";
      "prerr_string"; "prerr_char"; "prerr_bytes"; "prerr_int";
      "prerr_float"; "prerr_endline"; "prerr_newline";
      "read_line"; "read_int"; "read_int_opt"; "read_float";
      "read_float_opt";
      "stdout"; "stderr"; "stdin";
      "output_string"; "output_char"; "output_bytes"; "output_value";
      "open_out"; "open_in"; "open_out_bin"; "open_in_bin";
      "Printf.printf"; "Printf.eprintf"; "Printf.fprintf";
      "Format.printf"; "Format.eprintf"; "Format.fprintf";
      "Format.std_formatter"; "Format.err_formatter";
      "Sys.command"; "Sys.remove"; "Sys.rename"; "Sys.getenv";
      "Sys.getenv_opt"; "Sys.argv"; "exit";
    ]

let io_prefixes = [ "In_channel."; "Out_channel."; "Unix."; "Filename." ]

let nondet_exact =
  SSet.of_list
    [
      "Unix.gettimeofday"; "Unix.time"; "Sys.time"; "Domain.self";
      "Domain.DLS.get";
    ]

let nondet_prefixes = [ "Random." ]

let has_prefix prefixes k =
  List.exists (fun p -> String.length k >= String.length p
                        && String.sub k 0 (String.length p) = p) prefixes

let task_entry_points = SSet.of_list [ "Task_pool.run"; "Task_pool.map_list" ]

(* The exceptions the model purity contract declares legal: the
   documented domain error plus anything a model unit itself defines. *)
let base_allowed_exns = SSet.of_list [ "Invalid_argument" ]

(* ---- Loading ---- *)

type loaded = {
  l_modname : string;
  l_file : string;
  l_structure : Typedtree.structure;
}

let load_cmt path =
  match Cmt_format.read_cmt path with
  | exception exn ->
      Error (Printf.sprintf "%s: unreadable cmt: %s" path (Printexc.to_string exn))
  | cmt -> (
      match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
      | Cmt_format.Implementation str, Some src
        when not (Filename.check_suffix src "-gen") ->
          Ok (Some { l_modname = cmt.Cmt_format.cmt_modname; l_file = src;
                     l_structure = str },
              cmt.Cmt_format.cmt_builddir)
      | _ -> Ok (None, cmt.Cmt_format.cmt_builddir))

(* ---- The per-unit walk ---- *)

let rec path_comps = function
  | Path.Pident id -> Some [ Ident.name id ]
  | Path.Pdot (p, s) -> (
      match path_comps p with Some c -> Some (c @ [ s ]) | None -> None)
  | Path.Papply _ -> None
  | _ -> None
(* The final wildcard absorbs Pextra_ty, added in 5.2. *)
[@@warning "-11"]

let target_of_path ~wrappers = function
  | Path.Pident id -> Some (Local id)
  | p -> (
      match path_comps p with
      | Some comps -> Some (Global (normalize ~wrappers comps))
      | None -> None)

let line_of loc = loc.Location.loc_start.Lexing.pos_lnum

let first_arg args =
  List.fold_left
    (fun acc (_, a) -> match (acc, a) with None, Some e -> Some e | _ -> acc)
    None args

let last_arg args =
  List.fold_left
    (fun acc (_, a) -> match a with Some e -> Some e | None -> acc)
    None args

(* Peel field projections so [r.a.b <- v] mutates the binding of [r]. *)
let rec head_expr (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_field (inner, _, _) -> head_expr inner
  | _ -> e

let global_key ~wrappers p =
  match path_comps p with
  | Some comps -> Some (key_of (normalize ~wrappers comps))
  | None -> None

(* RHS classification for a top-level binding: does it directly apply
   a mutable-state constructor? (Constraints live in exp_extra, so the
   desc is already the application.) *)
let alloc_of ~wrappers (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_apply ({ Typedtree.exp_desc = Typedtree.Texp_ident (p, _, _); _ }, _)
    -> (
      match global_key ~wrappers p with
      | Some k when SSet.mem k mutable_ctors -> (Some k, false)
      | Some k when k = atomic_ctor -> (Some k, true)
      | _ -> (None, false))
  | _ -> (None, false)

let collect_expr ~wrappers (d : def) (e0 : Typedtree.expression) =
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    let line = line_of e.Typedtree.exp_loc in
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> (
        match target_of_path ~wrappers p with
        | Some t -> d.refs <- (t, line) :: d.refs
        | None -> ())
    | Typedtree.Texp_setfield (tgt, _, _, _) -> (
        match (head_expr tgt).Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> (
            match target_of_path ~wrappers p with
            | Some t -> d.writes <- (t, "<- mutable-field write", line) :: d.writes
            | None -> ())
        | _ -> ())
    | Typedtree.Texp_apply
        ({ Typedtree.exp_desc = Typedtree.Texp_ident (p, _, _); _ }, args) -> (
        match global_key ~wrappers p with
        | Some k when SSet.mem k raise_fns -> (
            match first_arg args with
            | Some { Typedtree.exp_desc = Typedtree.Texp_construct (_, cd, _); _ }
              ->
                d.raises <- (cd.Types.cstr_name, line) :: d.raises
            | _ -> ())
        | Some k when is_mutator k -> (
            let pick =
              if SSet.mem k mutators_last_arg then last_arg else first_arg
            in
            match pick args with
            | Some arg -> (
                match (head_expr arg).Typedtree.exp_desc with
                | Typedtree.Texp_ident (tp, _, _) -> (
                    match target_of_path ~wrappers tp with
                    | Some t -> d.writes <- (t, k, line) :: d.writes
                    | None -> ())
                | _ -> ())
            | None -> ())
        | _ -> ())
    | _ -> ());
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  it.expr it e0

let walk_unit ~wrappers (u : unit_info) (str : Typedtree.structure) =
  let uid = ref 0 in
  let fresh ~mpath ~name ~idents ~loc ~alloc ~atomic =
    incr uid;
    {
      uid = (u.u_id * 100000) + !uid;
      unit_id = u.u_id;
      unit_short = u.short;
      d_key = String.concat "." (mpath @ [ name ]);
      d_file = u.u_file;
      d_line = line_of loc;
      idents;
      alloc;
      atomic;
      refs = [];
      writes = [];
      raises = [];
    }
  in
  let add_def d = u.u_defs <- d :: u.u_defs in
  let rec walk_items mpath items = List.iter (walk_item mpath) items
  and walk_item mpath (it : Typedtree.structure_item) =
    match it.Typedtree.str_desc with
    | Typedtree.Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let idents = Typedtree.pat_bound_idents vb.Typedtree.vb_pat in
            let name =
              match idents with
              | [ id ] -> Ident.name id
              | _ ->
                  Printf.sprintf "(binding@%d)"
                    (line_of vb.Typedtree.vb_pat.Typedtree.pat_loc)
            in
            let alloc, atomic = alloc_of ~wrappers vb.Typedtree.vb_expr in
            let d =
              fresh ~mpath ~name ~idents ~loc:vb.Typedtree.vb_pat.Typedtree.pat_loc
                ~alloc ~atomic
            in
            collect_expr ~wrappers d vb.Typedtree.vb_expr;
            add_def d)
          vbs
    | Typedtree.Tstr_eval (e, _) ->
        let d =
          fresh ~mpath
            ~name:(Printf.sprintf "(entry@%d)" (line_of e.Typedtree.exp_loc))
            ~idents:[] ~loc:e.Typedtree.exp_loc ~alloc:None ~atomic:false
        in
        collect_expr ~wrappers d e;
        add_def d
    | Typedtree.Tstr_module mb ->
        let name =
          match mb.Typedtree.mb_name.Location.txt with
          | Some n -> n
          | None -> "(anonymous)"
        in
        walk_module (mpath @ [ name ]) mb.Typedtree.mb_expr
    | Typedtree.Tstr_recmodule mbs ->
        List.iter
          (fun (mb : Typedtree.module_binding) ->
            let name =
              match mb.Typedtree.mb_name.Location.txt with
              | Some n -> n
              | None -> "(anonymous)"
            in
            walk_module (mpath @ [ name ]) mb.Typedtree.mb_expr)
          mbs
    | Typedtree.Tstr_include incl ->
        walk_module mpath incl.Typedtree.incl_mod
    | Typedtree.Tstr_exception te ->
        u.u_exns <-
          Ident.name te.Typedtree.tyexn_constructor.Typedtree.ext_id
          :: u.u_exns
    | _ -> ()
  and walk_module mpath (me : Typedtree.module_expr) =
    match me.Typedtree.mod_desc with
    | Typedtree.Tmod_structure s -> walk_items mpath s.Typedtree.str_items
    | Typedtree.Tmod_constraint (inner, _, _, _) -> walk_module mpath inner
    | Typedtree.Tmod_functor (_, body) -> walk_module mpath body
    | _ -> ()
  in
  walk_items [ u.short ] str.Typedtree.str_items

(* ---- Source access for waivers ---- *)

let read_lines path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let src =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Some (Array.of_list (String.split_on_char '\n' src))

let resolve_source ~builddir file =
  if Sys.file_exists file then Some file
  else
    let joined = Filename.concat builddir file in
    if Sys.file_exists joined then Some joined else None

(* ---- The whole-program analysis ---- *)

let analyze_files ?(model_units = []) paths =
  let errors = ref [] in
  let loaded = ref [] in
  let seen_modnames = Hashtbl.create 64 in
  List.iter
    (fun path ->
      match load_cmt path with
      | Error msg -> errors := msg :: !errors
      | Ok (None, _) -> ()
      | Ok (Some l, builddir) ->
          if not (Hashtbl.mem seen_modnames l.l_modname) then begin
            Hashtbl.add seen_modnames l.l_modname ();
            loaded := (l, builddir) :: !loaded
          end)
    paths;
  let loaded = List.rev !loaded in
  let wrappers =
    List.fold_left
      (fun acc (l, _) ->
        match wrapper_of_modname l.l_modname with
        | Some w -> SSet.add w acc
        | None -> acc)
      SSet.empty loaded
  in
  let units =
    List.mapi
      (fun i (l, builddir) ->
        let short = after_last_mangle l.l_modname in
        let u =
          {
            u_id = i + 1;
            modname = l.l_modname;
            short;
            u_file = l.l_file;
            source_path = resolve_source ~builddir l.l_file;
            is_model =
              l.l_modname = "Sdn_model"
              || String.starts_with ~prefix:"Sdn_model__" l.l_modname
              || List.mem short model_units;
            u_defs = [];
            u_exns = [];
          }
        in
        walk_unit ~wrappers u l.l_structure;
        u.u_defs <- List.rev u.u_defs;
        (u, l))
      loaded
  in
  let units = List.map fst units in
  (* Def lookup: cross-unit by normalised key (a multimap — two units
     may share a short name), same-unit by ident stamp. *)
  let by_key : (string, def) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun u -> List.iter (fun d -> Hashtbl.add by_key d.d_key d) u.u_defs)
    units;
  let unit_by_id = Hashtbl.create 16 in
  List.iter (fun u -> Hashtbl.add unit_by_id u.u_id u) units;
  let resolve_target (d : def) = function
    | Global comps ->
        let k = key_of comps in
        Hashtbl.find_all by_key k
        @ Hashtbl.find_all by_key (d.unit_short ^ "." ^ k)
    | Local id -> (
        match Hashtbl.find_opt unit_by_id d.unit_id with
        | None -> []
        | Some u ->
            List.filter
              (fun (dd : def) -> List.exists (Ident.same id) dd.idents)
              u.u_defs)
  in
  let all_defs = List.concat_map (fun u -> u.u_defs) units in
  (* Roots: any def referencing a Task_pool entry point. *)
  let is_root d =
    List.exists
      (fun (t, _) ->
        match t with
        | Global comps -> SSet.mem (key_of comps) task_entry_points
        | Local _ -> false)
      d.refs
  in
  let roots = List.filter is_root all_defs in
  (* Closure over call edges. *)
  let reachable : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let rec visit d =
    if not (Hashtbl.mem reachable d.uid) then begin
      Hashtbl.add reachable d.uid ();
      List.iter
        (fun (t, _) -> List.iter visit (resolve_target d t))
        d.refs
    end
  in
  List.iter visit roots;
  let in_closure d = Hashtbl.mem reachable d.uid in
  (* Model exception allowance: declared in any model unit. *)
  let allowed_exns =
    List.fold_left
      (fun acc u ->
        if u.is_model then
          List.fold_left (fun acc e -> SSet.add e acc) acc u.u_exns
        else acc)
      base_allowed_exns units
  in
  let raw = ref [] in
  let add file line rule message =
    raw := { Report_common.file; line; rule; message } :: !raw
  in
  (* par-global: once per (accessing def, target def) pair, at the
     first offending line, so one waiver covers one sharing
     relationship rather than every touch. *)
  let flagged : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let flag_pair d (g : def) line message =
    if not (Hashtbl.mem flagged (d.uid, g.uid)) then begin
      Hashtbl.add flagged (d.uid, g.uid) ();
      add d.d_file line "par-global" message
    end
  in
  List.iter
    (fun d ->
      if in_closure d then begin
        List.iter
          (fun (t, line) ->
            List.iter
              (fun (g : def) ->
                match g.alloc with
                | Some ctor when not g.atomic ->
                    flag_pair d g line
                      (Printf.sprintf
                         "%s is reachable from a Task_pool task and touches \
                          top-level mutable state %s (%s); mediate it with \
                          Atomic or confine it to the task"
                         d.d_key g.d_key ctor)
                | _ -> ())
              (resolve_target d t))
          (List.sort (fun (_, a) (_, b) -> Int.compare a b) d.refs);
        List.iter
          (fun (t, op, line) ->
            if not (SSet.mem op atomic_mutators) then
              match resolve_target d t with
              | [] -> (
                  (* A write to state this graph has no def for is only
                     possible through a foreign module's toplevel. *)
                  match t with
                  | Global comps when List.length comps > 1 ->
                      add d.d_file line "par-global"
                        (Printf.sprintf
                           "%s is reachable from a Task_pool task and writes \
                            external toplevel state %s (%s)"
                           d.d_key (key_of comps) op)
                  | _ -> ())
              | gs ->
                  List.iter
                    (fun (g : def) ->
                      flag_pair d g line
                        (Printf.sprintf
                           "%s is reachable from a Task_pool task and writes \
                            top-level state %s (%s); mediate it with Atomic \
                            or confine it to the task"
                           d.d_key g.d_key op))
                    gs)
          (List.sort (fun (_, _, a) (_, _, b) -> Int.compare a b) d.writes)
      end)
    all_defs;
  (* Model purity. *)
  List.iter
    (fun u ->
      if u.is_model then
        List.iter
          (fun (d : def) ->
            (match d.alloc with
            | Some ctor ->
                add d.d_file d.d_line "model-mutation"
                  (Printf.sprintf
                     "top-level mutable state %s (%s) in an oracle unit; the \
                      model layer must hold no state between calls"
                     d.d_key ctor)
            | None -> ());
            List.iter
              (fun (t, op, line) ->
                let targets = resolve_target d t in
                let foreign =
                  match t with
                  | Global comps -> targets = [] && List.length comps > 1
                  | Local _ -> false
                in
                if targets <> [] || foreign then
                  let name =
                    match targets with
                    | g :: _ -> g.d_key
                    | [] -> (
                        match t with
                        | Global comps -> key_of comps
                        | Local id -> Ident.name id)
                  in
                  add d.d_file line "model-mutation"
                    (Printf.sprintf
                       "%s mutates %s (%s), which is not function-local; a \
                        pure model function may only write state it \
                        allocated itself"
                       d.d_key name op))
              d.writes;
            List.iter
              (fun (t, line) ->
                match t with
                | Local _ -> ()
                | Global comps ->
                    let k = key_of comps in
                    if SSet.mem k io_exact || has_prefix io_prefixes k then
                      add d.d_file line "model-io"
                        (Printf.sprintf
                           "%s performs I/O through %s; the oracle must be \
                            observationally silent"
                           d.d_key k)
                    else if SSet.mem k nondet_exact || has_prefix nondet_prefixes k
                    then
                      add d.d_file line "model-nondet"
                        (Printf.sprintf
                           "%s reads non-deterministic state via %s; model \
                            outputs must be a function of their arguments"
                           d.d_key k)
                    else if k = "failwith" then
                      add d.d_file line "model-exception"
                        (Printf.sprintf
                           "%s uses failwith; the model's only legal errors \
                            are its declared domain errors (invalid_arg or \
                            an exception declared in lib/model)"
                           d.d_key))
              d.refs;
            List.iter
              (fun (exn_name, line) ->
                if not (SSet.mem exn_name allowed_exns) then
                  add d.d_file line "model-exception"
                    (Printf.sprintf
                       "%s raises %s, which is not a declared domain error \
                        (Invalid_argument or an exception declared in \
                        lib/model)"
                       d.d_key exn_name))
              d.raises)
          u.u_defs)
    units;
  let raw = List.rev !raw in
  (* Waivers and stale-waiver detection, per unit source file. *)
  let findings =
    List.concat_map
      (fun u ->
        let mine = List.filter (fun f -> f.Report_common.file = u.u_file) raw in
        match u.source_path with
        | None -> mine
        | Some path -> (
            match read_lines path with
            | None -> mine
            | Some lines ->
                let visible =
                  List.filter
                    (fun (f : finding) ->
                      not
                        (Report_common.suppressed ~keyword:"analyze" ~rules
                           ~lines ~line:f.Report_common.line
                           ~rule:f.Report_common.rule))
                    mine
                in
                visible
                @ Report_common.stale_allows ~keyword:"analyze" ~rules
                    ~file:u.u_file ~lines ~raw:mine))
      units
  in
  let findings = List.sort_uniq Report_common.compare_findings findings in
  ( findings,
    List.rev !errors,
    {
      units = List.length units;
      defs = List.length all_defs;
      task_roots = List.length roots;
      task_reachable = Hashtbl.length reachable;
    } )
