(** Scheduler turning a {!Patterns} injection plan into engine events —
    the stand-in for the paper's pktgen host. *)

open Sdn_sim

type stats = { injected : int; bytes : int; first : float; last : float }

val schedule :
  Engine.t -> inject:(in_port:int -> Bytes.t -> unit) -> Patterns.injection list -> unit
(** Arrange for each frame to be delivered to [inject] at its time. *)

val stats_of : Patterns.injection list -> stats

val offered_rate_mbps : stats -> float
(** Application-level sending rate implied by the plan. *)
