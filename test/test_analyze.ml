(* The @analyze typedtree gate, exercised against a fixture corpus.
   The fixtures are compiled on the fly with `ocamlc -bin-annot` into
   a temp directory (the analyzer consumes cmt artifacts, not
   sources), then analyzed as one program: the racy global trips
   par-global, the Atomic-mediated and task-local variants stay clean,
   the impure model unit trips every purity arm, declared domain
   errors pass, and the waiver/stale-waiver paths behave like the
   lint's. *)

let fixture_dir = "analyze_fixtures"

(* Compilation order matters only in that the Task_pool stub must
   come first: the task fixtures reference it. *)
let fixtures =
  [
    "task_pool.ml"; "racy_global.ml"; "atomic_global.ml"; "task_local.ml";
    "impure_model.ml"; "model_errors.ml"; "waived_global.ml";
    "stale_waiver.ml";
  ]

let model_units = [ "Impure_model"; "Model_errors" ]

let copy_file src dst =
  let ic = open_in_bin src in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin dst in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* Compile once, analyze once, share the result across test cases. *)
let analysis =
  lazy
    (let dir = Filename.temp_dir "sdn_analyze_fixtures" "" in
     List.iter
       (fun f -> copy_file (Filename.concat fixture_dir f) (Filename.concat dir f))
       fixtures;
     let cmd =
       Printf.sprintf "cd %s && ocamlc -bin-annot -w -a -c %s 1>&2"
         (Filename.quote dir)
         (String.concat " " fixtures)
     in
     let rc = Sys.command cmd in
     if rc <> 0 then
       Alcotest.failf "fixture compilation failed (exit %d): %s" rc cmd;
     let cmts =
       List.map
         (fun f -> Filename.concat dir (Filename.chop_suffix f ".ml" ^ ".cmt"))
         fixtures
       |> List.sort String.compare
     in
     Analyze_core.analyze_files ~model_units cmts)

let findings () =
  let fs, _, _ = Lazy.force analysis in
  fs

let of_file file =
  List.filter (fun f -> f.Report_common.file = file) (findings ())

let with_rule rule fs =
  List.filter (fun f -> f.Report_common.rule = rule) fs

let check_count label n fs = Alcotest.(check int) label n (List.length fs)

let test_loads () =
  let _, errors, stats = Lazy.force analysis in
  Alcotest.(check (list string)) "no load errors" [] errors;
  Alcotest.(check int) "all units loaded" (List.length fixtures)
    stats.Analyze_core.units;
  Alcotest.(check bool) "defs collected" true (stats.Analyze_core.defs > 10)

let test_roots () =
  let _, _, stats = Lazy.force analysis in
  (* racy_global, atomic_global, task_local, waived_global each
     contain one Task_pool.run call site. *)
  Alcotest.(check int) "task roots" 4 stats.Analyze_core.task_roots;
  Alcotest.(check bool) "closure covers the workers" true
    (stats.Analyze_core.task_reachable >= 8)

let test_racy_global () =
  match with_rule "par-global" (of_file "racy_global.ml") with
  | [ f ] ->
      Alcotest.(check bool) "positive line" true (f.Report_common.line > 0);
      Alcotest.(check bool) "names the shared binding" true
        (let msg = f.Report_common.message in
         let n = String.length msg in
         let needle = "Racy_global.hits" in
         let nn = String.length needle in
         let rec go i = i + nn <= n && (String.sub msg i nn = needle || go (i + 1)) in
         go 0)
  | fs ->
      Alcotest.failf "expected exactly one par-global in racy_global.ml, got %d"
        (List.length fs)

let test_atomic_clean () = check_count "atomic_global clean" 0 (of_file "atomic_global.ml")
let test_task_local_clean () = check_count "task_local clean" 0 (of_file "task_local.ml")

let test_impure_model () =
  let fs = of_file "impure_model.ml" in
  check_count "model-mutation (alloc + write)" 2 (with_rule "model-mutation" fs);
  check_count "model-io" 1 (with_rule "model-io" fs);
  check_count "model-nondet" 1 (with_rule "model-nondet" fs);
  check_count "model-exception (failwith + raise)" 2
    (with_rule "model-exception" fs);
  check_count "nothing else" 6 fs

let test_model_errors_clean () =
  check_count "declared domain errors pass" 0 (of_file "model_errors.ml")

let test_waiver () = check_count "waived par-global suppressed" 0 (of_file "waived_global.ml")

let test_stale_waiver () =
  match of_file "stale_waiver.ml" with
  | [ f ] -> Alcotest.(check string) "rule" "stale-allow" f.Report_common.rule
  | fs ->
      Alcotest.failf "expected exactly one stale-allow in stale_waiver.ml, got %d"
        (List.length fs)

let test_rule_catalog () =
  List.iter
    (fun rule ->
      Alcotest.(check bool)
        (rule ^ " catalogued")
        true
        (List.mem_assoc rule Analyze_core.rules))
    [
      "par-global"; "model-mutation"; "model-io"; "model-nondet";
      "model-exception"; "stale-allow";
    ]

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_sarif () =
  let sarif =
    Report_common.to_sarif ~tool:"sdn_analyze" ~rules:Analyze_core.rules
      (findings ())
  in
  Alcotest.(check bool) "names the tool" true (contains sarif "sdn_analyze");
  Alcotest.(check bool) "carries the racy finding" true
    (contains sarif "par-global");
  Alcotest.(check bool) "declares the schema" true (contains sarif "2.1.0")

let suite =
  [
    Alcotest.test_case "fixture corpus compiles and loads" `Quick test_loads;
    Alcotest.test_case "task roots and closure" `Quick test_roots;
    Alcotest.test_case "racy global trips par-global once" `Quick
      test_racy_global;
    Alcotest.test_case "atomic-mediated global is clean" `Quick
      test_atomic_clean;
    Alcotest.test_case "task-local allocation is clean" `Quick
      test_task_local_clean;
    Alcotest.test_case "impure model trips every purity arm" `Quick
      test_impure_model;
    Alcotest.test_case "declared domain errors pass" `Quick
      test_model_errors_clean;
    Alcotest.test_case "analyze: allow suppresses per site" `Quick test_waiver;
    Alcotest.test_case "stale analyze waiver is reported" `Quick
      test_stale_waiver;
    Alcotest.test_case "rule catalog is complete" `Quick test_rule_catalog;
    Alcotest.test_case "sarif output is well-formed" `Quick test_sarif;
  ]
