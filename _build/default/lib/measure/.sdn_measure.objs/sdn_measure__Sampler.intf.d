lib/measure/sampler.mli: Cpu Engine Sdn_sim Timeseries
