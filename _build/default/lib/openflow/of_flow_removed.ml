type reason = Idle_timeout | Hard_timeout | Delete

type t = {
  match_ : Of_match.t;
  cookie : int64;
  priority : int;
  reason : reason;
  duration_sec : int32;
  duration_nsec : int32;
  idle_timeout : int;
  packet_count : int64;
  byte_count : int64;
}

let body_size = Of_match.size + 8 + 2 + 1 + 1 + 4 + 4 + 2 + 2 + 8 + 8 (* 80 *)

let reason_to_int = function Idle_timeout -> 0 | Hard_timeout -> 1 | Delete -> 2

let reason_of_int = function
  | 0 -> Ok Idle_timeout
  | 1 -> Ok Hard_timeout
  | 2 -> Ok Delete
  | n -> Error (Printf.sprintf "Of_flow_removed: unknown reason %d" n)

let write_body t buf off =
  Of_match.write t.match_ buf off;
  let o = off + Of_match.size in
  Bytes.set_int64_be buf o t.cookie;
  Bytes.set_uint16_be buf (o + 8) t.priority;
  Bytes.set_uint8 buf (o + 10) (reason_to_int t.reason);
  Bytes.set_uint8 buf (o + 11) 0;
  Bytes.set_int32_be buf (o + 12) t.duration_sec;
  Bytes.set_int32_be buf (o + 16) t.duration_nsec;
  Bytes.set_uint16_be buf (o + 20) t.idle_timeout;
  Bytes.set_uint16_be buf (o + 22) 0;
  Bytes.set_int64_be buf (o + 24) t.packet_count;
  Bytes.set_int64_be buf (o + 32) t.byte_count

let read_body buf off ~len =
  if len < body_size then Error "Of_flow_removed.read_body: truncated"
  else begin
    match Of_match.read buf off with
    | Error _ as e -> e
    | Ok match_ -> (
        let o = off + Of_match.size in
        match reason_of_int (Bytes.get_uint8 buf (o + 10)) with
        | Error _ as e -> e
        | Ok reason ->
            Ok
              {
                match_;
                cookie = Bytes.get_int64_be buf o;
                priority = Bytes.get_uint16_be buf (o + 8);
                reason;
                duration_sec = Bytes.get_int32_be buf (o + 12);
                duration_nsec = Bytes.get_int32_be buf (o + 16);
                idle_timeout = Bytes.get_uint16_be buf (o + 20);
                packet_count = Bytes.get_int64_be buf (o + 24);
                byte_count = Bytes.get_int64_be buf (o + 32);
              })
  end

let equal a b =
  Of_match.equal a.match_ b.match_
  && Int64.equal a.cookie b.cookie
  && a.priority = b.priority && a.reason = b.reason
  && Int32.equal a.duration_sec b.duration_sec
  && Int32.equal a.duration_nsec b.duration_nsec
  && a.idle_timeout = b.idle_timeout
  && Int64.equal a.packet_count b.packet_count
  && Int64.equal a.byte_count b.byte_count

let reason_to_string = function
  | Idle_timeout -> "IDLE_TIMEOUT"
  | Hard_timeout -> "HARD_TIMEOUT"
  | Delete -> "DELETE"

let pp fmt t =
  Format.fprintf fmt "flow_removed{%a reason=%s pkts=%Ld}" Of_match.pp t.match_
    (reason_to_string t.reason) t.packet_count
