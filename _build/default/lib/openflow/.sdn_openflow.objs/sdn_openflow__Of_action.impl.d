lib/openflow/of_action.ml: Bytes Ethernet Format Int32 Ip Ipv4 List Mac Of_wire Packet Printf Result Sdn_net Tcp Udp
