type 'a t = {
  cmp : 'a -> 'a -> int;
  set_index : 'a -> int -> unit;
  min_capacity : int;
  mutable data : 'a option array;
  mutable size : int;
}

let create ?(capacity = 64) ?(set_index = fun _ _ -> ()) ~cmp () =
  let capacity = max capacity 1 in
  {
    cmp;
    set_index;
    min_capacity = capacity;
    data = Array.make capacity None;
    size = 0;
  }

let length t = t.size

let capacity t = Array.length t.data

let is_empty t = t.size = 0

let get t i =
  match t.data.(i) with
  | Some x -> x
  | None ->
      (* Unreachable: callers only index below [size], and every cell
         below [size] is [Some] — push fills the next cell before
         incrementing, pop/remove clear only cells at or past [size]. *)
      assert false (* lint: allow partial-exit *)

let set t i x =
  t.data.(i) <- Some x;
  t.set_index x i

let grow t =
  let data = Array.make (2 * Array.length t.data) None in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

(* Shrink the backing array once occupancy falls to a quarter, so a
   burst (an outage scenario queueing tens of thousands of timers) does
   not pin its high-water memory forever. Halving at one-quarter leaves
   a factor-two hysteresis band, so push/pop around the boundary cannot
   thrash between grow and shrink. *)
let maybe_shrink t =
  let cap = Array.length t.data in
  if cap > t.min_capacity && t.size * 4 <= cap then begin
    let data = Array.make (max t.min_capacity (cap / 2)) None in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (get t i) (get t parent) < 0 then begin
      let a = get t i and b = get t parent in
      set t i b;
      set t parent a;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp (get t l) (get t !smallest) < 0 then smallest := l;
  if r < t.size && t.cmp (get t r) (get t !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let a = get t i and b = get t !smallest in
    set t i b;
    set t !smallest a;
    sift_down t !smallest
  end

let push t x =
  if t.size = Array.length t.data then grow t;
  set t t.size x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    t.set_index top (-1);
    t.size <- t.size - 1;
    if t.size > 0 then set t 0 (get t t.size);
    t.data.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    maybe_shrink t;
    Some top
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let remove t i =
  if i < 0 || i >= t.size then invalid_arg "Heap.remove: index out of bounds";
  let removed = get t i in
  t.set_index removed (-1);
  t.size <- t.size - 1;
  if i < t.size then begin
    let last = get t t.size in
    t.data.(t.size) <- None;
    set t i last;
    (* The displaced element may violate the heap property in either
       direction relative to its new position. *)
    if i > 0 && t.cmp last (get t ((i - 1) / 2)) < 0 then sift_up t i
    else sift_down t i
  end
  else t.data.(t.size) <- None;
  maybe_shrink t;
  removed

let clear t =
  for i = 0 to t.size - 1 do
    t.set_index (get t i) (-1)
  done;
  t.size <- 0;
  if Array.length t.data > t.min_capacity then
    t.data <- Array.make t.min_capacity None
  else Array.fill t.data 0 (Array.length t.data) None

let iter f t =
  for i = 0 to t.size - 1 do
    f (get t i)
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  !acc
