(** Whole Ethernet frames: construction, binary encoding, parsing.

    A [Packet.t] is a structured view of a frame. [encode] produces the
    exact on-wire bytes — the byte counts that drive every
    control-path-load number in the reproduction — and [decode] parses
    them back (used when a [packet_out] carries a full packet that the
    switch must re-forward). *)

type l4 =
  | Udp of Udp.t * Bytes.t  (** header, application payload *)
  | Tcp of Tcp.t * Bytes.t
  | Raw_l4 of int * Bytes.t
      (** unparsed transport: protocol number, payload bytes *)

type l3 =
  | Ipv4 of Ipv4.t * l4
  | Arp of Arp.t
  | Raw_l3 of Bytes.t  (** unparsed network payload *)

type t = { eth : Ethernet.t; l3 : l3 }

val size : t -> int
(** Exact encoded size in bytes (without recomputing the encoding). *)

val encode : t -> Bytes.t
(** Serialize to wire format, computing all checksums. *)

val decode : Bytes.t -> (t, string) result
(** Parse a frame. Transport layers of IPv4 packets are parsed for UDP
    and TCP; other protocols come back as [Raw_l4]. *)

val flow_key : t -> Flow_key.t option
(** The 5-tuple, if the packet is IPv4 UDP or TCP. *)

val udp :
  src_mac:Mac.t ->
  dst_mac:Mac.t ->
  src_ip:Ip.t ->
  dst_ip:Ip.t ->
  src_port:int ->
  dst_port:int ->
  ?ttl:int ->
  ?ident:int ->
  payload:Bytes.t ->
  unit ->
  t
(** Build a UDP-in-IPv4-in-Ethernet frame. *)

val udp_frame_of_size :
  src_mac:Mac.t ->
  dst_mac:Mac.t ->
  src_ip:Ip.t ->
  dst_ip:Ip.t ->
  src_port:int ->
  dst_port:int ->
  frame_size:int ->
  payload_fill:(Bytes.t -> unit) ->
  t
(** Build a UDP frame whose total encoded size is exactly [frame_size]
    bytes (the paper uses 1000-byte frames). [payload_fill] writes the
    application payload in place (e.g. a pktgen-style tag). Raises
    [Invalid_argument] if [frame_size] is smaller than the combined
    headers (42 bytes). *)

val tcp :
  src_mac:Mac.t ->
  dst_mac:Mac.t ->
  src_ip:Ip.t ->
  dst_ip:Ip.t ->
  src_port:int ->
  dst_port:int ->
  ?ttl:int ->
  ?ident:int ->
  ?seq:int32 ->
  ?ack_seq:int32 ->
  ?flags:Tcp.flags ->
  ?window:int ->
  payload:Bytes.t ->
  unit ->
  t

val arp : src_mac:Mac.t -> dst_mac:Mac.t -> Arp.t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val min_udp_frame : int
(** Header overhead of a UDP frame: Ethernet + IPv4 + UDP = 42 bytes. *)

(** {2 Header peeking}

    A buffered [packet_in] carries only the first [miss_send_len] bytes
    of the frame, so the controller cannot run the validating
    {!decode} (payload checksums cannot be verified on a truncated
    frame). {!peek_headers} parses just the protocol headers. *)

type headers = {
  h_eth : Ethernet.t;
  h_ipv4 : Ipv4.t option;
  h_l4_ports : (int * int) option;  (** (src, dst) for UDP/TCP *)
}

val peek_headers : Bytes.t -> (headers, string) result
(** Parse Ethernet, and when present IPv4 and L4 port, headers from a
    possibly-truncated frame prefix. The IPv4 header checksum is still
    verified (it lies within the prefix); payload integrity is not. *)

val peek_flow_key : Bytes.t -> Flow_key.t option
(** The 5-tuple from a possibly-truncated frame prefix. *)
