type l4 =
  | Udp of Udp.t * Bytes.t
  | Tcp of Tcp.t * Bytes.t
  | Raw_l4 of int * Bytes.t

type l3 = Ipv4 of Ipv4.t * l4 | Arp of Arp.t | Raw_l3 of Bytes.t

type t = { eth : Ethernet.t; l3 : l3 }

let min_udp_frame = Ethernet.size + Ipv4.size + Udp.size

let l4_size = function
  | Udp (_, payload) -> Udp.size + Bytes.length payload
  | Tcp (_, payload) -> Tcp.size + Bytes.length payload
  | Raw_l4 (_, payload) -> Bytes.length payload

let size t =
  Ethernet.size
  +
  match t.l3 with
  | Ipv4 (_, l4) -> Ipv4.size + l4_size l4
  | Arp _ -> Arp.size
  | Raw_l3 payload -> Bytes.length payload

let encode t =
  let buf = Bytes.make (size t) '\000' in
  Ethernet.write t.eth buf 0;
  (match t.l3 with
  | Ipv4 (ip, l4) ->
      let ip_off = Ethernet.size in
      let l4_off = ip_off + Ipv4.size in
      Ipv4.write ip ~payload_len:(l4_size l4) buf ip_off;
      (match l4 with
      | Udp (udp, payload) ->
          Bytes.blit payload 0 buf (l4_off + Udp.size) (Bytes.length payload);
          Udp.write udp ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst ~payload buf
            l4_off
      | Tcp (tcp, payload) ->
          Bytes.blit payload 0 buf (l4_off + Tcp.size) (Bytes.length payload);
          Tcp.write tcp ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst ~payload buf
            l4_off
      | Raw_l4 (_, payload) ->
          Bytes.blit payload 0 buf l4_off (Bytes.length payload))
  | Arp arp -> Arp.write arp buf Ethernet.size
  | Raw_l3 payload -> Bytes.blit payload 0 buf Ethernet.size (Bytes.length payload));
  buf

let decode_l4 ip buf off payload_len =
  let sub () = Bytes.sub buf off payload_len in
  if ip.Ipv4.proto = Ipv4.proto_udp then
    match
      Udp.read buf off ~len:payload_len ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst
    with
    | Ok (udp, data_len) -> Ok (Udp (udp, Bytes.sub buf (off + Udp.size) data_len))
    | Error _ as e -> e
  else if ip.Ipv4.proto = Ipv4.proto_tcp then
    match
      Tcp.read buf off ~len:payload_len ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst
    with
    | Ok (tcp, data_len) -> Ok (Tcp (tcp, Bytes.sub buf (off + Tcp.size) data_len))
    | Error _ as e -> e
  else Ok (Raw_l4 (ip.Ipv4.proto, sub ()))

let decode buf =
  match Ethernet.read buf 0 with
  | Error _ as e -> e
  | Ok eth ->
      if eth.Ethernet.ethertype = Ethernet.ethertype_ipv4 then begin
        match Ipv4.read buf Ethernet.size with
        | Error _ as e -> e
        | Ok (ip, payload_len) ->
            let l4_off = Ethernet.size + Ipv4.size in
            if l4_off + payload_len > Bytes.length buf then
              Error "Packet.decode: truncated IPv4 payload"
            else begin
              match decode_l4 ip buf l4_off payload_len with
              | Ok l4 -> Ok { eth; l3 = Ipv4 (ip, l4) }
              | Error _ as e -> e
            end
      end
      else if eth.Ethernet.ethertype = Ethernet.ethertype_arp then begin
        match Arp.read buf Ethernet.size with
        | Ok arp -> Ok { eth; l3 = Arp arp }
        | Error _ as e -> e
      end
      else begin
        let payload =
          Bytes.sub buf Ethernet.size (Bytes.length buf - Ethernet.size)
        in
        Ok { eth; l3 = Raw_l3 payload }
      end

let flow_key t =
  match t.l3 with
  | Ipv4 (ip, Udp (udp, _)) ->
      Some
        (Flow_key.make ~proto:Ipv4.proto_udp ~src_ip:ip.Ipv4.src
           ~dst_ip:ip.Ipv4.dst ~src_port:udp.Udp.src_port
           ~dst_port:udp.Udp.dst_port)
  | Ipv4 (ip, Tcp (tcp, _)) ->
      Some
        (Flow_key.make ~proto:Ipv4.proto_tcp ~src_ip:ip.Ipv4.src
           ~dst_ip:ip.Ipv4.dst ~src_port:tcp.Tcp.src_port
           ~dst_port:tcp.Tcp.dst_port)
  | Ipv4 (_, Raw_l4 _) | Arp _ | Raw_l3 _ -> None

let udp ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port ~dst_port ?(ttl = 64)
    ?(ident = 0) ~payload () =
  {
    eth =
      { Ethernet.dst = dst_mac; src = src_mac; ethertype = Ethernet.ethertype_ipv4 };
    l3 =
      Ipv4
        ( {
            Ipv4.tos = 0;
            ident;
            dont_fragment = true;
            ttl;
            proto = Ipv4.proto_udp;
            src = src_ip;
            dst = dst_ip;
          },
          Udp ({ Udp.src_port; dst_port }, payload) );
  }

let udp_frame_of_size ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port ~dst_port
    ~frame_size ~payload_fill =
  if frame_size < min_udp_frame then
    invalid_arg
      (Printf.sprintf "Packet.udp_frame_of_size: %d < minimum %d" frame_size
         min_udp_frame);
  let payload = Bytes.make (frame_size - min_udp_frame) '\000' in
  payload_fill payload;
  udp ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port ~dst_port ~payload ()

let tcp ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port ~dst_port ?(ttl = 64)
    ?(ident = 0) ?(seq = 0l) ?(ack_seq = 0l) ?(flags = Tcp.no_flags)
    ?(window = 65535) ~payload () =
  {
    eth =
      { Ethernet.dst = dst_mac; src = src_mac; ethertype = Ethernet.ethertype_ipv4 };
    l3 =
      Ipv4
        ( {
            Ipv4.tos = 0;
            ident;
            dont_fragment = true;
            ttl;
            proto = Ipv4.proto_tcp;
            src = src_ip;
            dst = dst_ip;
          },
          Tcp ({ Tcp.src_port; dst_port; seq; ack_seq; flags; window }, payload)
        );
  }

let arp ~src_mac ~dst_mac payload =
  {
    eth =
      { Ethernet.dst = dst_mac; src = src_mac; ethertype = Ethernet.ethertype_arp };
    l3 = Arp payload;
  }

type headers = {
  h_eth : Ethernet.t;
  h_ipv4 : Ipv4.t option;
  h_l4_ports : (int * int) option;
}

let peek_headers buf =
  match Ethernet.read buf 0 with
  | Error _ as e -> e
  | Ok eth ->
      if eth.Ethernet.ethertype <> Ethernet.ethertype_ipv4 then
        Ok { h_eth = eth; h_ipv4 = None; h_l4_ports = None }
      else begin
        match Ipv4.read buf Ethernet.size with
        | Error _ as e -> e
        | Ok (ip, _payload_len) ->
            let l4_off = Ethernet.size + Ipv4.size in
            let ports =
              if
                (ip.Ipv4.proto = Ipv4.proto_udp || ip.Ipv4.proto = Ipv4.proto_tcp)
                && l4_off + 4 <= Bytes.length buf
              then
                Some
                  ( Bytes.get_uint16_be buf l4_off,
                    Bytes.get_uint16_be buf (l4_off + 2) )
              else None
            in
            Ok { h_eth = eth; h_ipv4 = Some ip; h_l4_ports = ports }
      end

let peek_flow_key buf =
  match peek_headers buf with
  | Error _ -> None
  | Ok { h_ipv4 = Some ip; h_l4_ports = Some (src_port, dst_port); _ } ->
      Some
        (Flow_key.make ~proto:ip.Ipv4.proto ~src_ip:ip.Ipv4.src
           ~dst_ip:ip.Ipv4.dst ~src_port ~dst_port)
  | Ok _ -> None

let equal_l4 a b =
  match (a, b) with
  | Udp (ha, pa), Udp (hb, pb) -> Udp.equal ha hb && Bytes.equal pa pb
  | Tcp (ha, pa), Tcp (hb, pb) -> Tcp.equal ha hb && Bytes.equal pa pb
  | Raw_l4 (na, pa), Raw_l4 (nb, pb) -> na = nb && Bytes.equal pa pb
  | (Udp _ | Tcp _ | Raw_l4 _), _ -> false

let equal_l3 a b =
  match (a, b) with
  | Ipv4 (ha, la), Ipv4 (hb, lb) -> Ipv4.equal ha hb && equal_l4 la lb
  | Arp a, Arp b -> Arp.equal a b
  | Raw_l3 a, Raw_l3 b -> Bytes.equal a b
  | (Ipv4 _ | Arp _ | Raw_l3 _), _ -> false

let equal a b = Ethernet.equal a.eth b.eth && equal_l3 a.l3 b.l3

let pp fmt t =
  match t.l3 with
  | Ipv4 (ip, Udp (udp, payload)) ->
      Format.fprintf fmt "%a %a %a len=%d" Ethernet.pp t.eth Ipv4.pp ip Udp.pp
        udp (Bytes.length payload)
  | Ipv4 (ip, Tcp (tcp, payload)) ->
      Format.fprintf fmt "%a %a %a len=%d" Ethernet.pp t.eth Ipv4.pp ip Tcp.pp
        tcp (Bytes.length payload)
  | Ipv4 (ip, Raw_l4 (proto, payload)) ->
      Format.fprintf fmt "%a %a l4proto=%d len=%d" Ethernet.pp t.eth Ipv4.pp ip
        proto (Bytes.length payload)
  | Arp arp -> Format.fprintf fmt "%a %a" Ethernet.pp t.eth Arp.pp arp
  | Raw_l3 payload ->
      Format.fprintf fmt "%a raw len=%d" Ethernet.pp t.eth (Bytes.length payload)
