(* Tests for the Bigarray frame pool and the allocation-free fast
   path built on it: slot lifecycle discipline (exhaustion, double
   release, crash wipe), wire-layout header access against real
   encoded frames, and the Check frame-pool conservation ledger. *)

open Sdn_net

let mk_pool ?(slots = 4) ?(slot_size = 64) () =
  Frame_pool.create ~slots ~slot_size ()

let sample_frame ?(ttl = 64) () =
  Packet.encode
    (Packet.udp
       ~src_mac:(Mac.of_string_exn "02:00:00:00:00:01")
       ~dst_mac:(Mac.of_string_exn "02:00:00:00:00:02")
       ~src_ip:(Ip.make 10 0 0 1) ~dst_ip:(Ip.make 10 0 0 2) ~src_port:4242
       ~dst_port:9 ~ttl
       ~payload:(Bytes.make 6 'x')
       ())

let test_alloc_release_exhaustion () =
  let pool = mk_pool ~slots:3 () in
  let a = Frame_pool.alloc pool in
  let b = Frame_pool.alloc pool in
  let c = Frame_pool.alloc pool in
  Alcotest.(check bool) "three distinct slots" true
    (a >= 0 && b >= 0 && c >= 0 && a <> b && b <> c && a <> c);
  Alcotest.(check int) "exhausted" (-1) (Frame_pool.alloc pool);
  Alcotest.(check int) "none free" 0 (Frame_pool.free_count pool);
  Alcotest.(check int) "all live" 3 (Frame_pool.live_count pool);
  Alcotest.(check bool) "release b" true (Frame_pool.release pool b);
  Alcotest.(check int) "one free" 1 (Frame_pool.free_count pool);
  Alcotest.(check int) "recycled" b (Frame_pool.alloc pool)

let test_double_release_rejected () =
  let pool = mk_pool () in
  let a = Frame_pool.alloc pool in
  Alcotest.(check bool) "first release" true (Frame_pool.release pool a);
  Alcotest.(check bool) "double release rejected" false
    (Frame_pool.release pool a);
  Alcotest.(check bool) "out of range rejected" false
    (Frame_pool.release pool 99);
  Alcotest.(check bool) "negative rejected" false (Frame_pool.release pool (-1));
  Alcotest.(check int) "free count unaffected" (Frame_pool.slots pool)
    (Frame_pool.free_count pool)

let test_wipe_on_crash () =
  let pool = mk_pool ~slots:2 ~slot_size:128 () in
  let a = Frame_pool.alloc pool in
  Frame_pool.load pool a (sample_frame ());
  ignore (Frame_pool.alloc pool);
  Alcotest.(check int) "pool saturated" 0 (Frame_pool.free_count pool);
  Frame_pool.wipe pool;
  Alcotest.(check int) "all free after wipe" 2 (Frame_pool.free_count pool);
  let b = Frame_pool.alloc pool in
  Alcotest.(check int) "no stale bytes survive" 0
    (Frame_pool.get_u32 pool b Frame_pool.off_src_ip);
  Alcotest.(check int) "length reset" 0 (Frame_pool.length pool b)

let test_load_peek_roundtrip () =
  let pool = mk_pool ~slot_size:128 () in
  let frame = sample_frame () in
  let slot = Frame_pool.alloc pool in
  Frame_pool.load pool slot frame;
  Alcotest.(check int) "stored length" (Bytes.length frame)
    (Frame_pool.length pool slot);
  Alcotest.(check bytes) "copy_out is byte-identical" frame
    (Frame_pool.copy_out pool slot);
  Alcotest.(check int) "proto peek" Ipv4.proto_udp
    (Frame_pool.get_u8 pool slot Frame_pool.off_proto);
  Alcotest.(check int) "src port peek" 4242
    (Frame_pool.get_u16 pool slot Frame_pool.off_src_port);
  Alcotest.(check int) "dst port peek" 9
    (Frame_pool.get_u16 pool slot Frame_pool.off_dst_port);
  Alcotest.(check int) "src ip peek" 0x0A000001
    (Frame_pool.get_u32 pool slot Frame_pool.off_src_ip);
  Alcotest.(check int) "dst ip peek" 0x0A000002
    (Frame_pool.get_u32 pool slot Frame_pool.off_dst_ip)

(* The in-place TTL rewrite must keep the IPv4 header checksum valid:
   decode the rewritten frame with the strict checksum-verifying
   parser and compare against a freshly encoded TTL-63 packet. *)
let test_dec_ttl_checksum () =
  let pool = mk_pool ~slot_size:128 () in
  let slot = Frame_pool.alloc pool in
  Frame_pool.load pool slot (sample_frame ~ttl:64 ());
  Alcotest.(check int) "ttl decremented" 63 (Frame_pool.dec_ttl pool slot);
  Alcotest.(check bytes) "rewritten frame equals TTL-63 encoding"
    (sample_frame ~ttl:63 ())
    (Frame_pool.copy_out pool slot);
  match Packet.decode (Frame_pool.copy_out pool slot) with
  | Ok { Packet.l3 = Packet.Ipv4 (ip, _); _ } ->
      Alcotest.(check int) "decoded ttl" 63 ip.Ipv4.ttl
  | Ok _ -> Alcotest.fail "expected IPv4"
  | Error e -> Alcotest.fail ("decode after rewrite failed: " ^ e)

let test_load_rejects () =
  let pool = mk_pool ~slots:2 ~slot_size:16 () in
  let slot = Frame_pool.alloc pool in
  Alcotest.check_raises "oversized frame" (Invalid_argument
    "Frame_pool.load: frame of 60 bytes exceeds slot size 16") (fun () ->
      Frame_pool.load pool slot (Bytes.create 60));
  ignore (Frame_pool.release pool slot);
  Alcotest.(check bool) "load on free slot raises" true
    (try
       Frame_pool.load pool slot (Bytes.create 8);
       false
     with Invalid_argument _ -> true)

(* ---- fast path ---- *)

let fp_setup () =
  let pool = Frame_pool.create ~slots:32 ~slot_size:128 () in
  let fp = Sdn_switch.Fast_path.create ~pool ~n_ports:2 ~ring_capacity:16 () in
  (pool, fp)

let load_sample pool =
  let slot = Frame_pool.alloc pool in
  Frame_pool.load pool slot (sample_frame ());
  slot

let install_sample fp =
  Sdn_switch.Fast_path.install fp ~proto:Ipv4.proto_udp ~src_ip:0x0A000001
    ~dst_ip:0x0A000002 ~src_port:4242 ~dst_port:9 ~out_port:1

let test_fast_path_hit () =
  let pool, fp = fp_setup () in
  let slot = load_sample pool in
  Alcotest.(check int) "miss before install" (-1)
    (Sdn_switch.Fast_path.process fp slot);
  Alcotest.(check bool) "install" true (install_sample fp);
  Alcotest.(check int) "hit routes to port 1" 1
    (Sdn_switch.Fast_path.process fp slot);
  Alcotest.(check int) "queued" 1 (Sdn_switch.Fast_path.queue_length fp 1);
  Alcotest.(check int) "ttl rewritten in place" 63
    (Frame_pool.get_u8 pool slot Frame_pool.off_ttl);
  Alcotest.(check int) "dequeue returns the slot" slot
    (Sdn_switch.Fast_path.dequeue fp 1);
  Alcotest.(check int) "ring drained" (-1) (Sdn_switch.Fast_path.dequeue fp 1);
  Alcotest.(check int) "stats" 1 (Sdn_switch.Fast_path.hits fp);
  Alcotest.(check int) "miss counted" 1 (Sdn_switch.Fast_path.misses fp)

let test_fast_path_ring_full_and_flush () =
  let pool, fp = fp_setup () in
  Alcotest.(check bool) "install" true (install_sample fp);
  let slots = List.init 17 (fun _ -> load_sample pool) in
  let results = List.map (Sdn_switch.Fast_path.process fp) slots in
  Alcotest.(check int) "16 fit the ring" 16
    (List.length (List.filter (fun r -> r = 1) results));
  Alcotest.(check (list int)) "17th dropped" [ -2 ]
    (List.filter (fun r -> r < 0) results);
  Alcotest.(check int) "drop counted" 1 (Sdn_switch.Fast_path.drops fp);
  Sdn_switch.Fast_path.flush fp;
  Alcotest.(check int) "flush empties table" 0
    (Sdn_switch.Fast_path.entries fp);
  let slot = load_sample pool in
  Alcotest.(check int) "miss after flush" (-1)
    (Sdn_switch.Fast_path.process fp slot)

(* ---- Check conservation ledger ---- *)

let violations_of check = List.map (fun v -> v.Sdn_check.Check.invariant)
    (Sdn_check.Check.violations check)

let test_check_frame_pool_clean () =
  let check = Sdn_check.Check.create () in
  let pool = mk_pool ~slots:2 () in
  let note_claim slot =
    ignore slot;
    Sdn_check.Check.note_frame_pool_claim check ~time:0.0 ~pool:"fp"
      ~free:(Frame_pool.free_count pool)
  in
  Sdn_check.Check.note_frame_pool_create check ~time:0.0 ~pool:"fp"
    ~slots:(Frame_pool.slots pool);
  let a = Frame_pool.alloc pool in
  note_claim a;
  let b = Frame_pool.alloc pool in
  note_claim b;
  ignore (Frame_pool.release pool a);
  Sdn_check.Check.note_frame_pool_release check ~time:1.0 ~pool:"fp"
    ~free:(Frame_pool.free_count pool);
  Frame_pool.wipe pool;
  Sdn_check.Check.note_frame_pool_wipe check ~time:2.0 ~pool:"fp"
    ~free:(Frame_pool.free_count pool);
  Alcotest.(check (list string)) "clean run has no violations" []
    (violations_of check)

let test_check_frame_pool_violations () =
  let check = Sdn_check.Check.create () in
  Sdn_check.Check.note_frame_pool_create check ~time:0.0 ~pool:"fp" ~slots:2;
  (* Claim reporting an impossible free count: conservation broken. *)
  Sdn_check.Check.note_frame_pool_claim check ~time:0.1 ~pool:"fp" ~free:2;
  (* Release with nothing live: double release. *)
  Sdn_check.Check.note_frame_pool_release check ~time:0.2 ~pool:"fp" ~free:2;
  Sdn_check.Check.note_frame_pool_release check ~time:0.3 ~pool:"fp" ~free:2;
  (* Wipe that somehow left a slot claimed. *)
  Sdn_check.Check.note_frame_pool_wipe check ~time:0.4 ~pool:"fp" ~free:1;
  (* Claim on a pool never created. *)
  Sdn_check.Check.note_frame_pool_claim check ~time:0.5 ~pool:"ghost" ~free:0;
  Alcotest.(check bool) "all five flagged" true
    (List.length (violations_of check) >= 5
    && List.for_all
         (String.equal "frame-pool-conservation")
         (violations_of check))

let suite =
  [
    Alcotest.test_case "alloc/release and exhaustion" `Quick
      test_alloc_release_exhaustion;
    Alcotest.test_case "double release rejected" `Quick
      test_double_release_rejected;
    Alcotest.test_case "wipe on crash" `Quick test_wipe_on_crash;
    Alcotest.test_case "load/peek roundtrip" `Quick test_load_peek_roundtrip;
    Alcotest.test_case "dec_ttl keeps checksum valid" `Quick
      test_dec_ttl_checksum;
    Alcotest.test_case "load argument validation" `Quick test_load_rejects;
    Alcotest.test_case "fast path hit/dequeue" `Quick test_fast_path_hit;
    Alcotest.test_case "fast path ring-full and flush" `Quick
      test_fast_path_ring_full_and_flush;
    Alcotest.test_case "check ledger clean run" `Quick
      test_check_frame_pool_clean;
    Alcotest.test_case "check ledger violations" `Quick
      test_check_frame_pool_violations;
  ]
