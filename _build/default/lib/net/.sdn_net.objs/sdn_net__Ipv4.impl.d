lib/net/ipv4.ml: Bytes Checksum Format Ip
