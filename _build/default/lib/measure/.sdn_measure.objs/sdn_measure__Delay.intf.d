lib/measure/delay.mli: Bytes Sdn_sim Stats
