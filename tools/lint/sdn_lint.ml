(* Command-line driver for the determinism lint: walk the given
   directories (or individual .ml files), analyze every implementation
   file, and fail with exit 1 when any finding survives. Wired to the
   [@lint] dune alias over lib/, bin/ and bench/. *)

let usage = "sdn_lint [--json|--sarif] DIR|FILE..."

let rec collect_ml acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || (String.length entry > 0 && entry.[0] = '.')
        then acc
        else collect_ml acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let json = ref false in
  let sarif = ref false in
  let roots = ref [] in
  Arg.parse
    [
      ("--json", Arg.Set json, " emit the findings as a JSON array");
      ( "--sarif",
        Arg.Set sarif,
        " emit the findings as a SARIF 2.1.0 log (code-scanning upload)" );
    ]
    (fun root -> roots := root :: !roots)
    usage;
  let roots = List.rev !roots in
  if roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  List.iter
    (fun root ->
      if not (Sys.file_exists root) then begin
        Printf.eprintf "sdn_lint: no such file or directory: %s\n" root;
        exit 2
      end)
    roots;
  (* Sorted file order keeps the report (and the JSON) deterministic
     regardless of readdir order. *)
  let files =
    List.sort String.compare (List.fold_left collect_ml [] roots)
  in
  let findings, errors = Lint_core.lint_files files in
  List.iter (fun msg -> Printf.eprintf "sdn_lint: %s\n" msg) errors;
  if !sarif then print_string (Lint_core.to_sarif findings)
  else if !json then print_string (Lint_core.to_json findings)
  else begin
    List.iter
      (fun f -> Format.printf "%a@." Lint_core.pp_finding f)
      findings;
    match findings with
    | [] -> Printf.printf "lint: clean (%d files)\n" (List.length files)
    | _ ->
        Printf.printf "lint: %d finding(s) in %d files\n"
          (List.length findings) (List.length files)
  end;
  if errors <> [] then exit 2;
  if findings <> [] then exit 1
