(* The @lint source gate, exercised against a fixture corpus: each
   dirty fixture trips exactly its one rule, and the clean fixtures
   prove the sort discharge and the [lint: allow] suppression paths. *)

let fixture name = Filename.concat "lint_fixtures" name

let lint name =
  match Lint_core.lint_file (fixture name) with
  | Ok findings -> findings
  | Error e -> Alcotest.failf "fixture %s failed to parse: %s" name e

let fires_once name rule () =
  match lint name with
  | [ f ] ->
      Alcotest.(check string) "rule" rule f.Lint_core.rule;
      Alcotest.(check bool) "positive line" true (f.Lint_core.line > 0);
      Alcotest.(check bool) "message set" true
        (String.length f.Lint_core.message > 0)
  | fs ->
      Alcotest.failf "expected exactly one %s finding in %s, got %d" rule name
        (List.length fs)

let clean name () =
  match lint name with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "expected %s to be clean, first finding: %s:%d %s" name
        f.Lint_core.file f.Lint_core.line f.Lint_core.rule

let test_rule_catalog () =
  List.iter
    (fun rule ->
      Alcotest.(check bool)
        (rule ^ " catalogued")
        true
        (List.mem_assoc rule Lint_core.rules))
    [
      "wall-clock"; "entropy"; "hashtbl-order"; "exception-swallow";
      "partial-exit"; "poly-compare"; "global-mutable"; "domain-self";
      "stale-allow";
    ]

(* The whole-token waiver grammar: a token that is merely a prefix of
   a rule name suppresses nothing — the finding stays and the bogus
   waiver is itself reported. *)
let test_prefix_token_does_not_suppress () =
  let fs = lint "allow_prefix.ml" in
  let rules = List.map (fun f -> f.Lint_core.rule) fs in
  Alcotest.(check bool) "wall-clock still fires" true
    (List.mem "wall-clock" rules);
  Alcotest.(check bool) "bogus waiver reported stale" true
    (List.mem "stale-allow" rules);
  Alcotest.(check int) "nothing else" 2 (List.length fs)

let test_stale_allow_fires_once () =
  match lint "stale_allow.ml" with
  | [ f ] -> Alcotest.(check string) "rule" "stale-allow" f.Lint_core.rule
  | fs ->
      Alcotest.failf "expected exactly one stale-allow, got %d" (List.length fs)

let test_missing_file () =
  match Lint_core.lint_file (fixture "no_such_file.ml") with
  | Ok _ -> Alcotest.fail "expected an error for a missing file"
  | Error _ -> ()

let test_lint_files_aggregates () =
  let findings, errors =
    Lint_core.lint_files
      [ fixture "wall_clock.ml"; fixture "entropy.ml"; fixture "suppressed.ml" ]
  in
  Alcotest.(check int) "no read errors" 0 (List.length errors);
  Alcotest.(check int) "dirty fixtures only" 2 (List.length findings)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_json_output () =
  let json = Lint_core.to_json (lint "poly_compare.ml") in
  Alcotest.(check bool) "names the rule" true (contains json "poly-compare");
  Alcotest.(check bool) "names the file" true (contains json "poly_compare.ml")

let suite =
  [
    Alcotest.test_case "wall-clock fires once" `Quick
      (fires_once "wall_clock.ml" "wall-clock");
    Alcotest.test_case "entropy fires once" `Quick
      (fires_once "entropy.ml" "entropy");
    Alcotest.test_case "hashtbl-order fires once" `Quick
      (fires_once "hashtbl_order.ml" "hashtbl-order");
    Alcotest.test_case "exception-swallow fires once" `Quick
      (fires_once "exception_swallow.ml" "exception-swallow");
    Alcotest.test_case "partial-exit fires once" `Quick
      (fires_once "partial_exit.ml" "partial-exit");
    Alcotest.test_case "poly-compare fires once" `Quick
      (fires_once "poly_compare.ml" "poly-compare");
    Alcotest.test_case "global-mutable fires once" `Quick
      (fires_once "global_mutable.ml" "global-mutable");
    Alcotest.test_case "domain-self fires once" `Quick
      (fires_once "domain_self.ml" "domain-self");
    Alcotest.test_case "sort in same item discharges fold" `Quick
      (clean "sorted_fold.ml");
    Alcotest.test_case "lint: allow suppresses per site" `Quick
      (clean "suppressed.ml");
    Alcotest.test_case "one waiver names two rules" `Quick
      (clean "allow_two.ml");
    Alcotest.test_case "prefix token does not suppress" `Quick
      test_prefix_token_does_not_suppress;
    Alcotest.test_case "stale waiver fires once" `Quick
      test_stale_allow_fires_once;
    Alcotest.test_case "rule catalog is complete" `Quick test_rule_catalog;
    Alcotest.test_case "missing file reports an error" `Quick test_missing_file;
    Alcotest.test_case "lint_files aggregates findings" `Quick
      test_lint_files_aggregates;
    Alcotest.test_case "json names rule and file" `Quick test_json_output;
  ]
