(* Tests for the discrete-event engine. *)

open Sdn_sim

let test_runs_in_time_order () =
  let engine = Engine.create () in
  let order = ref [] in
  ignore (Engine.schedule_at engine 3.0 (fun () -> order := 3 :: !order));
  ignore (Engine.schedule_at engine 1.0 (fun () -> order := 1 :: !order));
  ignore (Engine.schedule_at engine 2.0 (fun () -> order := 2 :: !order));
  Engine.run engine;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !order)

let test_fifo_tie_break () =
  let engine = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule_at engine 1.0 (fun () -> order := i :: !order))
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "insertion order at equal time" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_clock_advances () =
  let engine = Engine.create () in
  let seen = ref [] in
  ignore (Engine.schedule_at engine 0.5 (fun () -> seen := Engine.now engine :: !seen));
  ignore (Engine.schedule_at engine 1.5 (fun () -> seen := Engine.now engine :: !seen));
  Engine.run engine;
  Alcotest.(check (list (float 1e-12))) "clock at event times" [ 0.5; 1.5 ]
    (List.rev !seen)

let test_schedule_relative () =
  let engine = Engine.create ~now:10.0 () in
  let fired_at = ref 0.0 in
  ignore (Engine.schedule engine ~delay:2.0 (fun () -> fired_at := Engine.now engine));
  Engine.run engine;
  Alcotest.(check (float 1e-12)) "relative delay" 12.0 !fired_at

let test_rejects_past () =
  let engine = Engine.create ~now:5.0 () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Engine.schedule_at engine 4.0 (fun () -> ()));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative delay raises" true
    (try
       ignore (Engine.schedule engine ~delay:(-1.0) (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_cancel () =
  let engine = Engine.create () in
  let fired = ref false in
  let handle = Engine.schedule_at engine 1.0 (fun () -> fired := true) in
  Engine.cancel handle;
  Alcotest.(check bool) "marked cancelled" true (Engine.is_cancelled handle);
  Engine.run engine;
  Alcotest.(check bool) "did not fire" false !fired

let test_events_schedule_events () =
  let engine = Engine.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      ignore
        (Engine.schedule engine ~delay:0.1 (fun () ->
             incr count;
             chain (n - 1)))
  in
  chain 10;
  Engine.run engine;
  Alcotest.(check int) "all chained events ran" 10 !count;
  Alcotest.(check (float 1e-9)) "clock" 1.0 (Engine.now engine)

let test_run_until () =
  let engine = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> ignore (Engine.schedule_at engine t (fun () -> fired := t :: !fired)))
    [ 1.0; 2.0; 3.0 ];
  Engine.run ~until:2.5 engine;
  Alcotest.(check (list (float 1e-12))) "only events before limit" [ 1.0; 2.0 ]
    (List.rev !fired);
  Alcotest.(check (float 1e-12)) "clock advanced to limit" 2.5 (Engine.now engine);
  Alcotest.(check int) "one pending" 1 (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check (list (float 1e-12))) "rest runs later" [ 1.0; 2.0; 3.0 ]
    (List.rev !fired)

let test_run_until_idle_advances_clock () =
  let engine = Engine.create () in
  Engine.run ~until:7.0 engine;
  Alcotest.(check (float 1e-12)) "clock" 7.0 (Engine.now engine)

let test_processed_counter () =
  let engine = Engine.create () in
  for _ = 1 to 4 do
    ignore (Engine.schedule engine ~delay:0.1 (fun () -> ()))
  done;
  let cancelled = Engine.schedule engine ~delay:0.2 (fun () -> ()) in
  Engine.cancel cancelled;
  Engine.run engine;
  Alcotest.(check int) "processed excludes cancelled" 4 (Engine.processed engine)

let test_step () =
  let engine = Engine.create () in
  ignore (Engine.schedule engine ~delay:1.0 (fun () -> ()));
  Alcotest.(check bool) "step runs one" true (Engine.step engine);
  Alcotest.(check bool) "then empty" false (Engine.step engine)

(* Regression: cancel used to only flag the handle, leaving the event
   (and its closure) in the heap until its time came. It must remove
   the event for real, so mass-cancellation releases queue memory. *)
let test_cancel_removes_from_queue () =
  let engine = Engine.create () in
  let handles =
    List.init 10_000 (fun i ->
        Engine.schedule engine ~delay:(1.0 +. float_of_int i) (fun () ->
            Alcotest.fail "cancelled event ran"))
  in
  Alcotest.(check int) "all queued" 10_000 (Engine.pending engine);
  List.iter Engine.cancel handles;
  Alcotest.(check int) "cancel removes for real" 0 (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check int) "nothing processed" 0 (Engine.processed engine)

let test_cancel_idempotent () =
  let engine = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule_at engine 1.0 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.cancel h;
  Alcotest.(check int) "still empty" 0 (Engine.pending engine);
  let h2 = Engine.schedule_at engine 2.0 (fun () -> fired := true) in
  Engine.run engine;
  (* Cancelling after execution is a harmless no-op. *)
  Engine.cancel h2;
  Alcotest.(check bool) "executed event fired" true !fired

let test_step_batch_dispatches_equal_times () =
  let engine = Engine.create () in
  let ran = ref 0 in
  for _ = 1 to 3 do
    ignore (Engine.schedule_at engine 1.0 (fun () -> incr ran))
  done;
  for _ = 1 to 2 do
    ignore (Engine.schedule_at engine 2.0 (fun () -> incr ran))
  done;
  Alcotest.(check int) "first batch" 3 (Engine.step_batch engine);
  Alcotest.(check (float 1e-12)) "clock at batch time" 1.0 (Engine.now engine);
  Alcotest.(check int) "ran" 3 !ran;
  Alcotest.(check int) "second batch" 2 (Engine.step_batch engine);
  Alcotest.(check int) "empty batch" 0 (Engine.step_batch engine)

let test_step_batch_includes_spawned_same_time () =
  let engine = Engine.create () in
  let order = ref [] in
  ignore
    (Engine.schedule_at engine 1.0 (fun () ->
         order := `First :: !order;
         ignore
           (Engine.schedule engine ~delay:0.0 (fun () ->
                order := `Spawned :: !order))));
  ignore (Engine.schedule_at engine 1.0 (fun () -> order := `Second :: !order));
  let n = Engine.step_batch engine in
  Alcotest.(check int) "spawned same-time event joins the batch" 3 n;
  Alcotest.(check bool) "spawned runs after pre-scheduled siblings" true
    (List.rev !order = [ `First; `Second; `Spawned ])

let test_cancel_sibling_during_batch () =
  let engine = Engine.create () in
  let second_ran = ref false in
  let second = ref None in
  ignore
    (Engine.schedule_at engine 1.0 (fun () ->
         match !second with Some h -> Engine.cancel h | None -> ()));
  second :=
    Some (Engine.schedule_at engine 1.0 (fun () -> second_ran := true));
  Alcotest.(check int) "only the canceller ran" 1 (Engine.step_batch engine);
  Alcotest.(check bool) "cancelled sibling skipped" false !second_ran;
  Alcotest.(check int) "queue empty" 0 (Engine.pending engine)

let suite =
  [
    Alcotest.test_case "time order" `Quick test_runs_in_time_order;
    Alcotest.test_case "FIFO tie-break" `Quick test_fifo_tie_break;
    Alcotest.test_case "clock advances to event times" `Quick test_clock_advances;
    Alcotest.test_case "relative scheduling" `Quick test_schedule_relative;
    Alcotest.test_case "rejects past times" `Quick test_rejects_past;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "events schedule events" `Quick test_events_schedule_events;
    Alcotest.test_case "run ~until" `Quick test_run_until;
    Alcotest.test_case "run ~until with empty queue" `Quick
      test_run_until_idle_advances_clock;
    Alcotest.test_case "processed counter" `Quick test_processed_counter;
    Alcotest.test_case "single step" `Quick test_step;
    Alcotest.test_case "cancel removes from queue" `Quick
      test_cancel_removes_from_queue;
    Alcotest.test_case "cancel is idempotent" `Quick test_cancel_idempotent;
    Alcotest.test_case "step_batch dispatches equal times" `Quick
      test_step_batch_dispatches_equal_times;
    Alcotest.test_case "step_batch includes spawned same-time events" `Quick
      test_step_batch_includes_spawned_same_time;
    Alcotest.test_case "cancel sibling during batch" `Quick
      test_cancel_sibling_during_batch;
  ]
