lib/sim/heap.mli:
