examples/tcp_rule_eviction.ml: Capture Config Float List Patterns Pktgen Printf Report Scenario Sdn_core Sdn_measure Sdn_switch Sdn_traffic
