(** Closed-form single-station queueing models.

    The primitives behind the analytical oracle: M/M/c (Erlang-C
    delay), M/M/1/K (finite buffer with blocking), the Erlang loss
    formulas, and the Pollaczek-Khinchine mean wait for M/G/1 stations
    with deterministic or mixed service (the simulator's links and
    bus). All quantities are means of the stationary distribution;
    every function is pure and total on its stated domain, returning
    [infinity] for the saturated regimes ([rho >= 1]) instead of
    raising, so a validator can report a divergent operating point
    rather than crash on it. *)

type t = {
  lambda : float;  (** arrival rate, 1/s *)
  mu : float;  (** per-server service rate, 1/s *)
  servers : int;
  rho : float;  (** per-server utilization [lambda / (servers * mu)] *)
  wait_prob : float;
      (** probability an arrival waits (Erlang C); [1] at saturation *)
  lq : float;  (** mean number waiting *)
  wq : float;  (** mean wait before service, seconds *)
  l : float;  (** mean number in the station *)
  w : float;  (** mean sojourn (wait + service), seconds *)
}

val mmc : lambda:float -> mu:float -> servers:int -> t
(** The M/M/c queue. [rho >= 1] yields infinite [lq]/[wq]/[l]/[w] and
    [wait_prob = 1]. Raises [Invalid_argument] on [lambda < 0],
    [mu <= 0] or [servers < 1]. *)

val mm1 : lambda:float -> mu:float -> t
(** [mmc ~servers:1]: [w = 1 / (mu - lambda)] below saturation. *)

type finite = {
  f_lambda : float;  (** offered arrival rate *)
  f_mu : float;
  k : int;  (** system capacity (in service + waiting) *)
  f_rho : float;  (** offered load [lambda / mu] *)
  blocking : float;  (** stationary probability an arrival is lost *)
  lambda_eff : float;  (** accepted throughput [lambda * (1 - blocking)] *)
  f_l : float;  (** mean number in the system *)
  f_w : float;  (** mean sojourn of {e accepted} customers (Little) *)
}

val mm1k : lambda:float -> mu:float -> k:int -> finite
(** The M/M/1/K queue (one server, at most [k] customers in the
    system). Defined for every [rho >= 0], including [rho = 1]
    (uniform distribution limit: [blocking = 1/(k+1)], [l = k/2]) and
    [rho > 1]. As [k -> infinity] with [rho < 1] it converges to
    {!mm1}. Raises [Invalid_argument] on [k < 1], [lambda < 0] or
    [mu <= 0]. *)

val erlang_b : servers:int -> offered_load:float -> float
(** Blocking probability of the Erlang loss system M/G/c/c with
    [offered_load = lambda * mean holding time] (dimensionless
    Erlangs), by the standard stable recursion. Insensitive to the
    holding-time distribution, which is what makes it the right
    specialization for a buffer pool of [c] units whose residence time
    is a controller round trip plus a deterministic reclaim lag.
    Raises [Invalid_argument] on negative arguments. *)

val erlang_c : servers:int -> offered_load:float -> float
(** Probability of waiting in M/M/c (Erlang's delay formula), derived
    from {!erlang_b}; [1.0] when [offered_load >= servers]. *)

val mg1_wait : lambda:float -> mean_service:float -> second_moment:float -> float
(** Pollaczek-Khinchine mean waiting time of an M/G/1 queue:
    [lambda * E(S^2) / (2 (1 - rho))]; [infinity] at [rho >= 1]. Used
    for stations whose service time is deterministic or a mixture of
    deterministic sizes: the simulator's serialization links and the
    ASIC-CPU bus. *)

val md1_wait : lambda:float -> service:float -> float
(** M/D/1 mean wait: [mg1_wait] with [E(S^2) = service^2] — exactly
    half the M/M/1 wait at equal utilization. *)
