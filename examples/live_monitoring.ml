(* Live monitoring over the OpenFlow statistics machinery.

   Run with:  dune exec examples/live_monitoring.exe

   A monitor co-located with the controller polls the switch every
   50 ms with real OpenFlow messages — OFPST_AGGREGATE flow statistics
   plus this repository's vendor flow-buffer statistics — and prints
   the resulting timeline: the observability a deployment would use to
   pick a buffer size (paper, Section IV.G).

   The example wires the topology by hand (instead of using
   [Sdn_core.Scenario]) so the monitor can share the controller's
   control channel and decode the replies itself. *)

open Sdn_sim
open Sdn_net
open Sdn_openflow

let mac1 = Mac.of_octets 0x02 0 0 0 0 1
let mac2 = Mac.of_octets 0x02 0 0 0 0 2
let host1_ip = Ip.make 10 0 0 1
let host2_ip = Ip.make 10 0 0 2

type sample = {
  at : float;
  matched_packets : int64;
  rules : int32;
  buffer : Of_ext.stats;
}

let () =
  let engine = Engine.create () in
  let rng = Rng.of_int 13 in
  let switch =
    Sdn_switch.Switch.create engine
      ~config:
        {
          Sdn_switch.Switch.default_config with
          Sdn_switch.Switch.mechanism = Sdn_switch.Switch.Flow_granularity;
        }
      ~costs:Sdn_switch.Costs.default ~rng:(Rng.split rng) ()
  in
  let controller =
    Sdn_controller.Controller.create engine
      ~app:
        (Sdn_controller.Apps.forwarding
           ~hosts:[ (host1_ip, mac1, 1); (host2_ip, mac2, 2) ]
           ())
      ~costs:Sdn_controller.Costs.default ~rng:(Rng.split rng) ()
  in
  (* Monitor state: it keeps the pending-xid set and assembles a sample
     whenever both replies of a polling epoch have arrived. *)
  let pending = Hashtbl.create 8 in
  let timeline = ref [] in
  let latest_aggregate = ref 0L in
  let latest_rules = ref 0l in
  let monitor_sniff buf =
    match Of_codec.decode buf with
    | Ok (xid, Of_codec.Stats_reply (Of_stats.Aggregate_reply a))
      when Hashtbl.mem pending xid ->
        Hashtbl.remove pending xid;
        latest_aggregate := a.packet_count;
        latest_rules := a.flow_count
    | Ok (xid, Of_codec.Vendor (Of_ext.Flow_buffer_stats_reply s))
      when Hashtbl.mem pending xid ->
        Hashtbl.remove pending xid;
        timeline :=
          {
            at = Engine.now engine;
            matched_packets = !latest_aggregate;
            rules = !latest_rules;
            buffer = s;
          }
          :: !timeline
    | Ok _ | Error _ -> ()
  in
  (* Control channel; the monitor sniffs the upstream receiver. *)
  let to_controller =
    Link.create engine ~name:"sw->ctrl" ~bandwidth_bps:100e6
      ~propagation_s:350e-6
      ~receiver:(fun buf ->
        monitor_sniff buf;
        Sdn_controller.Controller.handle_message controller buf)
      ()
  in
  let to_switch =
    Link.create engine ~name:"ctrl->sw" ~bandwidth_bps:100e6
      ~propagation_s:350e-6
      ~receiver:(fun buf -> Sdn_switch.Switch.handle_of_message switch buf)
      ()
  in
  (* Data path. *)
  let received = ref 0 in
  let to_host2 =
    Link.create engine ~name:"sw->host2" ~bandwidth_bps:100e6
      ~propagation_s:30e-6
      ~receiver:(fun (_ : Bytes.t) -> incr received)
      ()
  in
  let to_host1 =
    Link.create engine ~name:"sw->host1" ~bandwidth_bps:100e6
      ~propagation_s:30e-6
      ~receiver:(fun (_ : Bytes.t) -> ())
      ()
  in
  let host1_link =
    Link.create engine ~name:"host1->sw" ~bandwidth_bps:100e6
      ~propagation_s:30e-6
      ~receiver:(fun frame -> Sdn_switch.Switch.handle_frame switch ~in_port:1 frame)
      ()
  in
  Sdn_switch.Switch.set_port switch ~port:1 to_host1;
  Sdn_switch.Switch.set_port switch ~port:2 to_host2;
  Sdn_switch.Switch.set_controller_link switch to_controller;
  Sdn_controller.Controller.set_switch_link controller to_switch;
  Sdn_switch.Switch.start switch;
  Sdn_controller.Controller.start controller
    ~enable_flow_buffer:(Sdn_openflow.Of_ext.default_backoff ~timeout:0.05) ();
  (* The polling loop: two real OpenFlow requests every 50 ms. *)
  let next_xid = ref 0x7000_0000l in
  let poll () =
    let send msg =
      next_xid := Int32.add !next_xid 1l;
      Hashtbl.replace pending !next_xid ();
      let encoded = Of_codec.encode ~xid:!next_xid msg in
      Link.send to_switch ~size:(Bytes.length encoded) encoded
    in
    send
      (Of_codec.Stats_request
         (Of_stats.Aggregate_request
            {
              match_ = Of_match.wildcard_all;
              table_id = 0xFF;
              out_port = Of_wire.Port.none;
            }));
    send (Of_codec.Vendor Of_ext.Flow_buffer_stats_request)
  in
  Sdn_measure.Sampler.every engine ~dt:0.05 ~until:0.35 (fun ~time:_ -> poll ());
  (* Traffic: the paper's Exp-B at 90 Mbps. *)
  let injections =
    Sdn_traffic.Patterns.exp_b ~rng:(Rng.split rng) ~start:0.05 ~n_flows:50
      ~packets_per_flow:20 ~concurrent:5 ~rate_mbps:90.0 ~frame_size:1000 ()
  in
  Sdn_traffic.Pktgen.schedule engine
    ~inject:(fun ~in_port:_ frame ->
      Link.send host1_link ~size:(Bytes.length frame) frame)
    injections;
  Engine.run ~until:0.6 engine;
  Printf.printf
    "Exp-B at 90 Mbps, flow-granularity buffer; the monitor polled the\n\
     switch every 50 ms with AGGREGATE + vendor buffer-stats requests:\n\n";
  let rows =
    List.rev_map
      (fun s ->
        [
          Printf.sprintf "%.0f" (s.at *. 1000.0);
          Int64.to_string s.matched_packets;
          Int32.to_string s.rules;
          Printf.sprintf "%d/%d" s.buffer.Of_ext.units_in_use
            s.buffer.Of_ext.units_total;
          string_of_int s.buffer.Of_ext.packets_buffered;
          string_of_int s.buffer.Of_ext.resends;
        ])
      !timeline
  in
  Sdn_measure.Report.print_table
    ~header:
      [ "t (ms)"; "pkts matched"; "rules"; "buffer units"; "chained pkts";
        "re-requests" ]
    ~rows;
  Printf.printf
    "\n%d of 1000 frames delivered to Host2. The pool breathes with each\n\
     cross-sequence batch: units spike as five new flows' first packets\n\
     arrive, then drain as releases land and installed rules take over.\n"
    !received
