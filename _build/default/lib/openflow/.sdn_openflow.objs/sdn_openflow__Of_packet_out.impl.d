lib/openflow/of_packet_out.ml: Bytes Format Int32 List Of_action Of_wire
