open Sdn_net

type context = {
  in_port : int;
  headers : Packet.headers;
  flow_key : Flow_key.t option;
  buffer_id : int32;
  total_len : int;
}

type forward = {
  out_port : int;
  install : bool;
  idle_timeout : int;
  hard_timeout : int;
}

type forward_queued = { f : forward; queue_id : int32 }

type decision =
  | Forward of forward
  | Forward_queued of forward_queued
  | Flood
  | Drop

type t = { name : string; decide : context -> decision }

let forward ?(install = true) ?(idle_timeout = 5) ?(hard_timeout = 0) out_port =
  Forward { out_port; install; idle_timeout; hard_timeout }
