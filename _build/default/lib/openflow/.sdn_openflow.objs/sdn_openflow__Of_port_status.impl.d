lib/openflow/of_port_status.ml: Bytes Format Int32 Of_features Printf
