type t = {
  mutable buffer : Bytes.t;
  mutable start : int;  (** first unconsumed byte *)
  mutable stop : int;  (** one past the last valid byte *)
  mutable corrupt : string option;
}

let create () =
  { buffer = Bytes.create 4096; start = 0; stop = 0; corrupt = None }

let buffered_bytes t = t.stop - t.start

let ensure_room t extra =
  let used = buffered_bytes t in
  if t.stop + extra <= Bytes.length t.buffer then ()
  else if used + extra <= Bytes.length t.buffer then begin
    (* Compact in place. *)
    Bytes.blit t.buffer t.start t.buffer 0 used;
    t.start <- 0;
    t.stop <- used
  end
  else begin
    let capacity = ref (2 * Bytes.length t.buffer) in
    while used + extra > !capacity do
      capacity := 2 * !capacity
    done;
    let bigger = Bytes.create !capacity in
    Bytes.blit t.buffer t.start bigger 0 used;
    t.buffer <- bigger;
    t.start <- 0;
    t.stop <- used
  end

let input_sub t chunk ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length chunk then
    invalid_arg "Of_stream.input_sub: slice out of bounds";
  ensure_room t len;
  Bytes.blit chunk pos t.buffer t.stop len;
  t.stop <- t.stop + len

let input t chunk = input_sub t chunk ~pos:0 ~len:(Bytes.length chunk)

type event = Message of int32 * Of_codec.msg | Awaiting | Corrupt of string

let next t =
  match t.corrupt with
  | Some msg -> Corrupt msg
  | None ->
      if buffered_bytes t < Of_wire.header_size then Awaiting
      else begin
        (* Peek the length field; the header is self-delimiting. *)
        let version = Bytes.get_uint8 t.buffer t.start in
        if version <> Of_wire.version then begin
          let msg = Printf.sprintf "bad version byte 0x%02x" version in
          t.corrupt <- Some msg;
          Corrupt msg
        end
        else begin
          let length = Bytes.get_uint16_be t.buffer (t.start + 2) in
          if length < Of_wire.header_size then begin
            let msg = Printf.sprintf "length field %d below header size" length in
            t.corrupt <- Some msg;
            Corrupt msg
          end
          else if buffered_bytes t < length then Awaiting
          else begin
            (* Decode in place — no copy of the message out of the
               receive buffer. *)
            match Of_codec.decode_sub t.buffer ~pos:t.start ~len:length with
            | Ok (xid, msg) ->
                t.start <- t.start + length;
                if t.start = t.stop then begin
                  t.start <- 0;
                  t.stop <- 0
                end;
                Message (xid, msg)
            | Error e ->
                t.corrupt <- Some e;
                Corrupt e
          end
        end
      end

let drain t =
  let rec loop acc =
    match next t with
    | Message (xid, msg) -> loop ((xid, msg) :: acc)
    | Awaiting -> Ok (List.rev acc)
    | Corrupt e -> Error e
  in
  loop []

let encode_batch messages =
  let total =
    List.fold_left (fun acc (_, msg) -> acc + Of_codec.size msg) 0 messages
  in
  (* One allocation for the whole batch; each message encodes straight
     into its slot. *)
  let out = Bytes.create total in
  let _ =
    List.fold_left
      (fun pos (xid, msg) -> pos + Of_codec.encode_into ~xid msg out ~pos)
      0 messages
  in
  out
