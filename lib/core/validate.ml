(* Cross-validation of the simulator against the closed-form models.

   The configurations generated here are *operating-regime* builds:
   Poisson arrivals, exponential service noise, uniform per-station
   service times, congestion/GC/batch-amortization machinery
   neutralized, utilization kept inside the models' stability band.
   Within that regime the Sdn_model predictions are exact up to the
   approximations documented in DESIGN.md section 12 (FIFO correlation
   across consecutive visits, arrival smoothing by the ingress link,
   batch pairing of FLOW_MOD/PACKET_OUT on the down link, finite-run
   transients), which the tolerance bands absorb. *)

open Sdn_net
open Sdn_openflow
module Mm1 = Sdn_model.Mm1
module Jackson = Sdn_model.Jackson
module Feedback = Sdn_model.Feedback
module Sw = Sdn_switch.Costs
module Ctl = Sdn_controller.Costs

type tolerance = { rel : float; abs : float }

type metric = {
  m_name : string;
  predicted : float;
  observed : float;
  tol : tolerance;
  m_ok : bool;
}

type point = {
  regime : string;
  profile : string;
  target : float;
  lambda_pps : float;
  rate_mbps : float;
  metrics : metric list;
  p_ok : bool;
}

type report = { points : point list; ok : bool; violations : int }

type grid = {
  rhos : float list;
  offered : float list;
  reps : int;
  packets : int;
  profiles : Ctl.profile list;
}

let full_grid =
  {
    rhos = [ 0.1; 0.3; 0.5; 0.7; 0.9 ];
    offered = [ 10.0; 16.0; 22.0 ];
    reps = 3;
    packets = 1500;
    profiles = Ctl.profiles;
  }

let quick_grid =
  {
    rhos = [ 0.2; 0.6 ];
    offered = [ 16.0 ];
    reps = 2;
    packets = 500;
    profiles = Ctl.profiles;
  }

let golden_grid =
  {
    rhos = [ 0.3; 0.7 ];
    (* 8 Erlangs is reachable inside every profile's stable band —
       the fixture never sits on the bisection cap. *)
    offered = [ 8.0 ];
    reps = 1;
    packets = 600;
    (* pox: its low service rates stretch 300 packets into a send
       window long enough to dominate the lead-in, keeping the single
       replication's estimates well-conditioned. *)
    profiles = [ Ctl.Pox ];
  }

(* ---- Operating-regime constants ---- *)

(* Frame size equals miss_send_len, so a buffered PACKET_IN and a
   full-frame fallback carry identical byte counts — the blocked and
   accepted paths of the blocking regime load every station equally. *)
let frame_size = 128
let q_mix = 0.5

(* Ceiling for kernel/userspace utilization at the top of the rho
   sweep: the controller is the designated bottleneck, the switch
   stations stay comfortably below saturation but still queue. *)
let util_cap = 0.35

(* Patterns.poisson_mix default: the flow-0 primer leads the main
   phase by this much. *)
let prime_lead = 0.05
let kernel_visits = 4.0 (* rx, upcall, release, fwd *)
let userspace_visits = 3.0 (* upcall, flow_mod, pkt_out *)

(* ---- Wire sizes, from the real codec ---- *)

let addressing = Sdn_traffic.Addressing.default

let sample_packet =
  Packet.udp_frame_of_size ~src_mac:addressing.Sdn_traffic.Addressing.src_mac
    ~dst_mac:addressing.Sdn_traffic.Addressing.dst_mac
    ~src_ip:(Sdn_traffic.Addressing.src_ip addressing ~flow_id:0)
    ~dst_ip:addressing.Sdn_traffic.Addressing.dst_ip
    ~src_port:(Sdn_traffic.Addressing.src_port addressing ~flow_id:0)
    ~dst_port:addressing.Sdn_traffic.Addressing.dst_port ~frame_size
    ~payload_fill:(fun _ -> ())

let sample_frame = Packet.encode sample_packet
let encoded_bytes msg = Bytes.length (Of_codec.encode ~xid:1l msg)

let pkt_in_bytes =
  encoded_bytes
    (Of_codec.Packet_in
       (Of_packet_in.make ~buffer_id:1l ~in_port:1
          ~reason:Of_packet_in.No_match ~frame:sample_frame
          ~miss_send_len:(Some frame_size)))

let flow_mod_bytes =
  encoded_bytes
    (Of_codec.Flow_mod
       (Of_flow_mod.add
          ~match_:
            (Of_match.of_flow_key (Option.get (Packet.flow_key sample_packet)))
          ~actions:[ Of_action.output 2 ] ()))

let po_release_bytes =
  let po = Of_packet_out.release ~buffer_id:1l ~out_port:2 in
  encoded_bytes
    (Of_codec.Packet_out { po with Of_packet_out.actions = [ Of_action.output 2 ] })

let po_full_bytes =
  let po = Of_packet_out.full ~frame:sample_frame ~in_port:1 ~out_port:2 in
  encoded_bytes
    (Of_codec.Packet_out { po with Of_packet_out.actions = [ Of_action.output 2 ] })

(* ---- Deterministic station service times ---- *)

let tx ~bytes ~bps = float_of_int bytes *. 8.0 /. bps
let bus_bw = Sw.default.Sw.bus_bandwidth_bps
let descriptor = Sw.default.Sw.bus_descriptor_bytes
let tx_bus_a = tx ~bytes:(frame_size + descriptor) ~bps:bus_bw
let tx_bus_b = tx ~bytes:descriptor ~bps:bus_bw
let ctl_bw = Calibration.control_link_bandwidth_bps
let ctl_prop = Calibration.control_link_latency
let tx_up = tx ~bytes:pkt_in_bytes ~bps:ctl_bw
let tx_fm = tx ~bytes:flow_mod_bytes ~bps:ctl_bw
let tx_po = tx ~bytes:po_release_bytes ~bps:ctl_bw
let tx_po_full = tx ~bytes:po_full_bytes ~bps:ctl_bw
let tx_eg = tx ~bytes:frame_size ~bps:Calibration.data_link_bandwidth_bps
let reclaim_lag = Sdn_switch.Switch.default_config.Sdn_switch.Switch.reclaim_lag

(* Mean controller work per buffered PACKET_IN under `Pair release
   (two replies, no data carried back). *)
let controller_service (cc : Ctl.t) ~data_out =
  cc.Ctl.parse_base_cost
  +. (cc.Ctl.parse_per_byte *. float_of_int pkt_in_bytes)
  +. cc.Ctl.decision_cost
  +. (2.0 *. cc.Ctl.encode_base_cost)
  +. (cc.Ctl.encode_per_byte *. float_of_int data_out)

(* M/G/1 with a deterministic service mixture: [classes] are
   (probability, service) pairs. *)
let mg1_classes ~lambda classes =
  let mean = List.fold_left (fun a (w, s) -> a +. (w *. s)) 0.0 classes in
  let m2 = List.fold_left (fun a (w, s) -> a +. (w *. s *. s)) 0.0 classes in
  Mm1.mg1_wait ~lambda ~mean_service:mean ~second_moment:m2

(* ---- Validation cost profiles ---- *)

let validation_controller_costs profile =
  {
    (Ctl.of_profile profile) with
    Ctl.congestion_slope = 0.0;
    congestion_cap = 1.0;
    gc_threshold_bytes = max_int;
    gc_slope_per_kb = 0.0;
    gc_cap = 1.0;
    gc_pause_duration = 0.0;
    service_distribution = Ctl.Exponential;
  }

(* Top of the rho sweep: the arrival rate at controller utilization
   0.9 for this profile. Switch stations are sized off it so they
   reach util_cap exactly there. *)
let lambda_top cc = 0.9 *. float_of_int cc.Ctl.cores /. controller_service cc ~data_out:0

let jackson_switch_costs ~s_k ~s_u =
  {
    Sw.default with
    Sw.kernel_cores = 1;
    userspace_cores = 1;
    kernel_rx_cost = s_k;
    kernel_fwd_cost = s_k;
    kernel_upcall_cost = s_k;
    release_per_packet_cost = s_k;
    upcall_base_cost = s_u;
    upcall_per_byte = 0.0;
    buffer_alloc_cost = 0.0;
    pkt_out_base_cost = s_u;
    pkt_out_per_byte = 0.0;
    flow_mod_install_cost = s_u;
    flow_mod_apply_latency = 0.0;
    amortization_floor = 1.0;
    service_distribution = Sw.Exponential;
  }

(* Mahmood's single switch station: only the kernel serves (rx for
   every packet, release for every miss — (1+q) visits with service),
   the upcall/forward kernel visits and the whole userspace path cost
   nothing. *)
let feedback_switch_costs ~s_s =
  {
    Sw.default with
    Sw.kernel_cores = 1;
    userspace_cores = 1;
    kernel_rx_cost = s_s;
    kernel_fwd_cost = 0.0;
    kernel_upcall_cost = 0.0;
    release_per_packet_cost = s_s;
    upcall_base_cost = 0.0;
    upcall_per_byte = 0.0;
    buffer_alloc_cost = 0.0;
    pkt_out_base_cost = 0.0;
    pkt_out_per_byte = 0.0;
    flow_mod_install_cost = 0.0;
    flow_mod_apply_latency = 0.0;
    amortization_floor = 1.0;
    service_distribution = Sw.Exponential;
  }

(* ---- Predictions ---- *)

let agrees tol ~predicted ~observed =
  Float.is_finite observed
  && Float.abs (predicted -. observed)
     <= Float.max tol.abs (tol.rel *. Float.abs predicted)

let mk_metric name predicted observed tol =
  { m_name = name; predicted; observed; tol; m_ok = agrees tol ~predicted ~observed }

(* Base tolerance per metric; high-utilization rho points get a wider
   relative band (transient bias and estimator variance both grow with
   1/(1-rho)). Calibrated against the full grid: bands sit at roughly
   2.5-3x the worst observed residual. *)
let widen ~target tol =
  { tol with rel = (if target >= 0.85 then 3.0 *. tol.rel else tol.rel) }
let tol_controller_delay = { rel = 0.15; abs = 0.15e-3 }
let tol_setup_delay = { rel = 0.15; abs = 0.3e-3 }
let tol_cpu = { rel = 0.12; abs = 1.0 }
let tol_buffer = { rel = 0.25; abs = 0.6 }
let tol_pkt_in_rate = { rel = 0.10; abs = 30.0 }
let tol_blocking = { rel = 0.30; abs = 0.02 }

type observed = {
  o_controller_delay : float;
  o_setup_delay : float;
  o_controller_cpu : float;
  o_switch_cpu : float;
  o_buffer_mean : float;
  o_pkt_in_rate : float;
  o_blocking : float;
}

let observe (results : Experiment.result list) =
  let len = float_of_int (List.length results) in
  let mean f = List.fold_left (fun a r -> a +. f r) 0.0 results /. len in
  let pooled f =
    let num, den =
      List.fold_left
        (fun (num, den) r ->
          let s : Experiment.summary = f r in
          (num +. (s.Experiment.mean *. float_of_int s.Experiment.count),
           den + s.Experiment.count))
        (0.0, 0) results
    in
    if den = 0 then nan else num /. float_of_int den
  in
  let isum f = List.fold_left (fun a r -> a + f r) 0 results in
  let fsum f = List.fold_left (fun a r -> a +. f r) 0.0 results in
  {
    o_controller_delay = pooled (fun r -> r.Experiment.controller_delay);
    o_setup_delay = pooled (fun r -> r.Experiment.setup_delay);
    o_controller_cpu = mean (fun r -> r.Experiment.controller_cpu_pct);
    o_switch_cpu = mean (fun r -> r.Experiment.switch_cpu_pct);
    o_buffer_mean = mean (fun r -> r.Experiment.buffer_mean_in_use);
    o_pkt_in_rate =
      float_of_int (isum (fun r -> r.Experiment.pkt_ins))
      /. Float.max 1e-9 (fsum (fun r -> r.Experiment.send_window));
    o_blocking =
      float_of_int (isum (fun r -> r.Experiment.full_packet_fallbacks))
      /. float_of_int
           (Stdlib.max 1 (isum (fun r -> Config.packets_expected r.Experiment.config)));
  }

let jackson_metrics ~lambda ~cc ~s_k ~s_u ~n obs ~target =
  let s_c = controller_service cc ~data_out:0 in
  let net =
    Jackson.solve ~arrival_rate:lambda
      [
        ({ Jackson.name = "kernel"; service = s_k; servers = 1 }, kernel_visits);
        ({ Jackson.name = "userspace"; service = s_u; servers = 1 },
         userspace_visits);
        ({ Jackson.name = "controller"; service = s_c; servers = cc.Ctl.cores },
         1.0);
      ]
  in
  let w_k = Jackson.sojourn net "kernel" in
  let w_u = Jackson.sojourn net "userspace" in
  let w_c = Jackson.sojourn net "controller" in
  let wq_bus =
    mg1_classes ~lambda:(2.0 *. lambda) [ (0.5, tx_bus_a); (0.5, tx_bus_b) ]
  in
  let wq_up = Mm1.md1_wait ~lambda ~service:tx_up in
  let wq_down =
    mg1_classes ~lambda:(2.0 *. lambda) [ (0.5, tx_fm); (0.5, tx_po) ]
  in
  let wq_eg = Mm1.md1_wait ~lambda ~service:tx_eg in
  (* The measured pair closes when the first response (the FLOW_MOD)
     is {e delivered} back to the switch: the down-link transmission
     and propagation are part of it. *)
  let controller_delay =
    tx_up +. ctl_prop +. w_c +. wq_down +. tx_fm +. ctl_prop
  in
  let setup =
    (2.0 *. w_k) +. wq_bus +. tx_bus_a +. w_u +. wq_up +. tx_up +. ctl_prop
    +. w_c +. wq_down +. tx_fm +. ctl_prop +. w_u +. s_u +. wq_bus +. tx_bus_b
    +. (2.0 *. w_k) +. wq_eg
  in
  let t_hold =
    wq_bus +. tx_bus_a +. w_u +. wq_up +. tx_up +. ctl_prop +. w_c +. wq_down
    +. tx_fm +. ctl_prop +. w_u +. s_u +. reclaim_lag
  in
  let send = float_of_int n /. lambda in
  let d_occ = send /. (Experiment.traffic_start +. send) in
  let t = widen ~target in
  [
    mk_metric "controller_delay" controller_delay obs.o_controller_delay
      (t tol_controller_delay);
    mk_metric "setup_delay" setup obs.o_setup_delay (t tol_setup_delay);
    mk_metric "controller_cpu_pct"
      (lambda *. s_c *. 100.0)
      obs.o_controller_cpu (t tol_cpu);
    mk_metric "switch_cpu_pct"
      (lambda *. ((kernel_visits *. s_k) +. (userspace_visits *. s_u)) *. 100.0)
      obs.o_switch_cpu (t tol_cpu);
    mk_metric "buffer_mean_in_use"
      (lambda *. t_hold *. d_occ)
      obs.o_buffer_mean (t tol_buffer);
  ]

let feedback_metrics ~lambda ~cc ~s_s ~n obs ~target =
  let q = q_mix in
  let s_c = controller_service cc ~data_out:0 in
  let fb =
    Feedback.eval
      {
        Feedback.lambda;
        packet_in_prob = q;
        switch_service = s_s;
        switch_servers = 1;
        controller_service = s_c;
        controller_servers = cc.Ctl.cores;
        loop_delay = tx_up +. ctl_prop;
      }
  in
  let w_s = fb.Feedback.switch.Mm1.w in
  let wq_s = fb.Feedback.switch.Mm1.wq in
  let w_c = fb.Feedback.controller.Mm1.w in
  let wq_bus =
    mg1_classes ~lambda:(2.0 *. q *. lambda)
      [ (0.5, tx_bus_a); (0.5, tx_bus_b) ]
  in
  let wq_up = Mm1.md1_wait ~lambda:(q *. lambda) ~service:tx_up in
  let wq_down =
    mg1_classes ~lambda:(2.0 *. q *. lambda) [ (0.5, tx_fm); (0.5, tx_po) ]
  in
  let wq_eg = Mm1.md1_wait ~lambda ~service:tx_eg in
  let controller_delay =
    fb.Feedback.packet_in_rtt +. wq_down +. tx_fm +. ctl_prop
  in
  (* The miss path: rx (full sojourn), upcall (zero service: pure
     wait), bus up, free userspace, control round trip, bus down,
     release (full sojourn), forward (pure wait), egress wait. *)
  let setup =
    w_s +. wq_s +. wq_bus +. tx_bus_a +. wq_up +. tx_up +. ctl_prop +. w_c
    +. wq_down +. tx_fm +. tx_po +. ctl_prop +. wq_bus +. tx_bus_b +. w_s
    +. wq_s +. wq_eg
  in
  let t_hold =
    wq_bus +. tx_bus_a +. wq_up +. tx_up +. ctl_prop +. w_c +. wq_down
    +. tx_fm +. tx_po +. ctl_prop +. reclaim_lag
  in
  let send = float_of_int n /. lambda in
  let d_cpu = send /. (prime_lead +. send) in
  let d_occ = send /. (Experiment.traffic_start +. prime_lead +. send) in
  let t = widen ~target in
  [
    mk_metric "controller_delay" controller_delay obs.o_controller_delay
      (t tol_controller_delay);
    mk_metric "setup_delay" setup obs.o_setup_delay (t tol_setup_delay);
    mk_metric "controller_cpu_pct"
      (q *. lambda *. s_c *. d_cpu *. 100.0)
      obs.o_controller_cpu (t tol_cpu);
    mk_metric "switch_cpu_pct"
      ((1.0 +. q) *. lambda *. s_s *. d_cpu *. 100.0)
      obs.o_switch_cpu (t tol_cpu);
    mk_metric "pkt_in_rate"
      (((q *. float_of_int n) +. 1.0) /. (prime_lead +. send))
      obs.o_pkt_in_rate (t tol_pkt_in_rate);
    mk_metric "buffer_mean_in_use"
      (q *. lambda *. t_hold *. d_occ)
      obs.o_buffer_mean (t tol_buffer);
  ]

(* ---- The blocking regime: buffer-16 as an Erlang loss system ----

   Every packet follows the same processing path whether its buffer
   allocation succeeds or falls back to a full-frame PACKET_IN (the
   byte counts are identical by construction), so station loads do not
   depend on the blocking probability; only the controller's encode
   work and the down-link/bus mix shift slightly with the full
   PACKET_OUT of blocked packets. A short fixed point over the
   blocking probability settles that coupling. *)

type blocking_pieces = {
  bp_offered : float;
  bp_blocking : float;
  bp_controller_delay : float;
  bp_t_hold : float;
}

let blocking_pieces ~lambda ~cc ~s_k ~s_u ~capacity =
  let eval b =
    let s_c =
      controller_service cc ~data_out:0
      +. (b *. cc.Ctl.encode_per_byte *. float_of_int frame_size)
    in
    let net =
      Jackson.solve ~arrival_rate:lambda
        [
          ({ Jackson.name = "kernel"; service = s_k; servers = 1 },
           kernel_visits);
          ({ Jackson.name = "userspace"; service = s_u; servers = 1 },
           userspace_visits);
          ({ Jackson.name = "controller"; service = s_c; servers = cc.Ctl.cores },
           1.0);
        ]
    in
    let w_u = Jackson.sojourn net "userspace" in
    let w_c = Jackson.sojourn net "controller" in
    let wq_bus =
      mg1_classes ~lambda:(2.0 *. lambda)
        [
          (0.5, tx_bus_a);
          (0.5 *. (1.0 -. b), tx_bus_b);
          (0.5 *. b, tx_bus_a);
        ]
    in
    let wq_up = Mm1.md1_wait ~lambda ~service:tx_up in
    let wq_down =
      mg1_classes ~lambda:(2.0 *. lambda)
        [
          (0.5, tx_fm);
          (0.5 *. (1.0 -. b), tx_po);
          (0.5 *. b, tx_po_full);
        ]
    in
    let controller_delay =
      tx_up +. ctl_prop +. w_c +. wq_down +. tx_fm +. ctl_prop
    in
    let t_hold =
      wq_bus +. tx_bus_a +. w_u +. wq_up +. tx_up +. ctl_prop +. w_c +. wq_down
      +. tx_fm +. ctl_prop +. w_u +. s_u +. reclaim_lag
    in
    let offered = lambda *. t_hold in
    let b' = Mm1.erlang_b ~servers:capacity ~offered_load:offered in
    (b', { bp_offered = offered; bp_blocking = b'; bp_controller_delay = controller_delay; bp_t_hold = t_hold })
  in
  let rec settle b i =
    let b', pieces = eval b in
    if i = 0 then pieces else settle b' (i - 1)
  in
  settle 0.0 3

(* Find the arrival rate at which the offered load hits [target]
   Erlangs. Offered load is increasing in lambda; the search is capped
   below controller saturation, so a target unreachable inside the
   stable band degrades to the highest well-conditioned point. *)
let blocking_lambda ~cc ~s_k ~s_u ~capacity ~target =
  let cap = 0.8 *. float_of_int cc.Ctl.cores /. controller_service cc ~data_out:0 in
  let offered l = (blocking_pieces ~lambda:l ~cc ~s_k ~s_u ~capacity).bp_offered in
  if offered cap <= target then cap
  else begin
    let lo = ref 1.0 and hi = ref cap in
    for _ = 1 to 60 do
      let mid = 0.5 *. (!lo +. !hi) in
      if offered mid < target then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

let blocking_metrics ~lambda ~cc ~s_k ~s_u ~capacity ~n obs ~target =
  let p = blocking_pieces ~lambda ~cc ~s_k ~s_u ~capacity in
  let send = float_of_int n /. lambda in
  let d_occ = send /. (Experiment.traffic_start +. send) in
  let t = widen ~target:0.0 in
  ignore target;
  (* Near controller saturation the holding time is dominated by the
     controller sojourn, making consecutive holds long {e and}
     serially correlated — which inflates loss above the Erlang-B
     baseline (whose insensitivity assumes holds independent of the
     arrival process). Points pushed there (pox reaching double-digit
     Erlangs) get a wider band. *)
  let rho_c =
    lambda *. controller_service cc ~data_out:0 /. float_of_int cc.Ctl.cores
  in
  let tol_b =
    if rho_c > 0.7 then { rel = 0.5; abs = 0.06 } else tol_blocking
  in
  [
    mk_metric "blocking" p.bp_blocking obs.o_blocking tol_b;
    mk_metric "buffer_mean_in_use"
      (p.bp_offered *. (1.0 -. p.bp_blocking) *. d_occ)
      obs.o_buffer_mean (t tol_buffer);
    mk_metric "controller_delay" p.bp_controller_delay obs.o_controller_delay
      (t tol_controller_delay);
  ]

(* ---- Specs and configurations ---- *)

type regime_kind = Jackson_r | Feedback_r | Blocking_r

let regime_name = function
  | Jackson_r -> "jackson"
  | Feedback_r -> "feedback"
  | Blocking_r -> "blocking"

type spec = {
  sp_regime : regime_kind;
  sp_profile : Ctl.profile;
  sp_target : float;
  sp_lambda : float;
  sp_n : int;
}

let specs_of grid =
  let with_profiles f = List.concat_map f grid.profiles in
  let jackson =
    with_profiles (fun profile ->
        let cc = validation_controller_costs profile in
        let s_c = controller_service cc ~data_out:0 in
        List.map
          (fun rho ->
            {
              sp_regime = Jackson_r;
              sp_profile = profile;
              sp_target = rho;
              sp_lambda = rho *. float_of_int cc.Ctl.cores /. s_c;
              sp_n = grid.packets;
            })
          grid.rhos)
  in
  let feedback =
    with_profiles (fun profile ->
        let cc = validation_controller_costs profile in
        let s_c = controller_service cc ~data_out:0 in
        List.map
          (fun rho ->
            (* The controller serves q*lambda: rho targets controller
               utilization, as in the jackson sweep. *)
            {
              sp_regime = Feedback_r;
              sp_profile = profile;
              sp_target = rho;
              sp_lambda = rho *. float_of_int cc.Ctl.cores /. (q_mix *. s_c);
              sp_n = grid.packets;
            })
          grid.rhos)
  in
  let blocking =
    with_profiles (fun profile ->
        let cc = validation_controller_costs profile in
        let lt = lambda_top cc in
        let s_k = util_cap /. (kernel_visits *. lt) in
        let s_u = util_cap /. (userspace_visits *. lt) in
        List.map
          (fun a ->
            {
              sp_regime = Blocking_r;
              sp_profile = profile;
              sp_target = a;
              sp_lambda = blocking_lambda ~cc ~s_k ~s_u ~capacity:16 ~target:a;
              sp_n = grid.packets;
            })
          grid.offered)
  in
  jackson @ feedback @ blocking

let spec_switch_costs spec =
  let cc = validation_controller_costs spec.sp_profile in
  let lt = lambda_top cc in
  match spec.sp_regime with
  | Jackson_r | Blocking_r ->
      jackson_switch_costs
        ~s_k:(util_cap /. (kernel_visits *. lt))
        ~s_u:(util_cap /. (userspace_visits *. lt))
  | Feedback_r ->
      (* The feedback sweep's top rate is higher (controller serves
         only the miss fraction), so the single switch station is
         sized off its own top. *)
      feedback_switch_costs ~s_s:(util_cap /. ((1.0 +. q_mix) *. (lt /. q_mix)))

let rate_mbps_of lambda = lambda *. float_of_int frame_size *. 8.0 /. 1e6

let config_of spec ~spec_idx ~rep ~check =
  let n = spec.sp_n in
  {
    Config.default with
    Config.mechanism = Config.Packet_granularity;
    buffer_capacity = (match spec.sp_regime with Blocking_r -> 16 | _ -> 4096);
    rate_mbps = rate_mbps_of spec.sp_lambda;
    frame_size;
    workload =
      (match spec.sp_regime with
      | Jackson_r | Blocking_r -> Config.Poisson_flows { n_flows = n }
      | Feedback_r ->
          Config.Poisson_mix { n_packets = n; miss_fraction = q_mix });
    seed = (spec_idx * 97) + rep + 1;
    release_strategy = `Pair;
    miss_send_len = frame_size;
    flow_table_capacity = n + 64;
    rule_idle_timeout = 120;
    check;
    switch_costs = spec_switch_costs spec;
    controller_costs = validation_controller_costs spec.sp_profile;
  }

let label_of spec ~rep =
  Printf.sprintf "validate/%s/%s/%s=%g/rep=%d"
    (regime_name spec.sp_regime)
    (Ctl.profile_to_string spec.sp_profile)
    (match spec.sp_regime with Blocking_r -> "offered" | _ -> "rho")
    spec.sp_target rep

let point_of spec results =
  let obs = observe results in
  let cc = validation_controller_costs spec.sp_profile in
  let lt = lambda_top cc in
  let s_k = util_cap /. (kernel_visits *. lt) in
  let s_u = util_cap /. (userspace_visits *. lt) in
  let metrics =
    match spec.sp_regime with
    | Jackson_r ->
        jackson_metrics ~lambda:spec.sp_lambda ~cc ~s_k ~s_u ~n:spec.sp_n obs
          ~target:spec.sp_target
    | Feedback_r ->
        feedback_metrics ~lambda:spec.sp_lambda ~cc
          ~s_s:(util_cap /. ((1.0 +. q_mix) *. (lt /. q_mix)))
          ~n:spec.sp_n obs ~target:spec.sp_target
    | Blocking_r ->
        blocking_metrics ~lambda:spec.sp_lambda ~cc ~s_k ~s_u ~capacity:16
          ~n:spec.sp_n obs ~target:spec.sp_target
  in
  {
    regime = regime_name spec.sp_regime;
    profile = Ctl.profile_to_string spec.sp_profile;
    target = spec.sp_target;
    lambda_pps = spec.sp_lambda;
    rate_mbps = rate_mbps_of spec.sp_lambda;
    metrics;
    p_ok = List.for_all (fun m -> m.m_ok) metrics;
  }

let run ?(check = false) ~jobs grid =
  let specs = specs_of grid in
  let configs =
    Array.of_list
      (List.concat
         (List.mapi
            (fun spec_idx spec ->
              List.init grid.reps (fun rep ->
                  config_of spec ~spec_idx ~rep ~check))
            specs))
  in
  let labels =
    Array.of_list
      (List.concat
         (List.map
            (fun spec -> List.init grid.reps (fun rep -> label_of spec ~rep))
            specs))
  in
  let results =
    Exec.run_experiments ~label:(fun i -> labels.(i)) ~jobs configs
  in
  let points =
    List.mapi
      (fun spec_idx spec ->
        let slice =
          List.init grid.reps (fun rep -> results.((spec_idx * grid.reps) + rep))
        in
        point_of spec slice)
      specs
  in
  {
    points;
    ok = List.for_all (fun p -> p.p_ok) points;
    violations =
      Array.fold_left
        (fun acc (r : Experiment.result) -> acc + r.Experiment.check_violations)
        0 results;
  }

(* ---- Crash reconvergence gate ---- *)

(* A mid-run crash must not leave a lasting bias. Frames that arrive
   while the node is dead are dropped unmeasured, so once the node has
   restarted and reconciled, the pooled per-message delay estimators
   have to re-enter the same tolerance bands the crash-free grid is
   held to. Aggregate metrics (CPU%, occupancy, rates) are excluded by
   design: the crash window removes offered load, so the run-wide
   averages shift even when the steady state has fully reconverged. *)

(* pox for the same reason the golden grid uses it: its low rates
   stretch 600 packets into a send window several times the outage, so
   the node recovers with roughly half the traffic still to come — the
   pooled delay estimators genuinely cover the post-recovery steady
   state, not just the pre-crash lead-in. 600 flows also keep the
   audit's Flow_reply inside a single frame (no multipart in this
   codec), so reconciliation can actually verify the whole table. *)
let reconvergence_grid =
  {
    rhos = [ 0.3 ];
    offered = [];
    reps = 2;
    packets = 600;
    profiles = [ Ctl.Pox ];
  }

(* Crash a third of the way into the send window; stay dead long
   enough for keepalive detection (echo_misses x echo_interval) to be
   comfortably inside the outage. *)
let reconvergence_crash spec =
  let send = float_of_int spec.sp_n /. spec.sp_lambda in
  {
    Sdn_sim.Faults.node = Sdn_sim.Faults.Switch_node;
    at_s = Experiment.traffic_start +. (0.3 *. send);
    down_s = Float.max 0.05 (0.15 *. send);
    mode = Sdn_sim.Faults.Warm;
  }

let reconvergence_config_of spec ~spec_idx ~rep ~check =
  let base = config_of spec ~spec_idx ~rep ~check in
  {
    base with
    Config.echo_interval = 0.01;
    echo_misses = 2;
    faults =
      {
        base.Config.faults with
        Sdn_sim.Faults.crashes = [ reconvergence_crash spec ];
      };
  }

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.equal (String.sub hay i nn) needle then true
    else scan (i + 1)
  in
  nn > 0 && scan 0

(* Recovery is restart-driven: the session is back Up within one
   outage-length of the scheduled downtime (the surviving peer's
   reconnect probes back off geometrically from the keepalive
   interval, so the first answered probe lags the restart by at most
   about one backoff step). rel=1.0 encodes exactly that bound. *)
let tol_recovery = { rel = 1.0; abs = 0.0 }
let tol_exact = { rel = 0.0; abs = 1e-6 }

let reconvergence_point_of spec results =
  let obs = observe results in
  let cc = validation_controller_costs spec.sp_profile in
  let lt = lambda_top cc in
  let s_k = util_cap /. (kernel_visits *. lt) in
  let s_u = util_cap /. (userspace_visits *. lt) in
  let steady =
    jackson_metrics ~lambda:spec.sp_lambda ~cc ~s_k ~s_u ~n:spec.sp_n obs
      ~target:spec.sp_target
  in
  let delays =
    List.filter (fun m -> contains_sub m.m_name "delay") steady
  in
  let crashes =
    List.fold_left (fun a r -> a + r.Experiment.node_crashes) 0 results
  in
  let recovery_mean =
    let num, den =
      List.fold_left
        (fun (num, den) r ->
          let s = r.Experiment.crash_recovery in
          (num +. (s.Experiment.mean *. float_of_int s.Experiment.count),
           den + s.Experiment.count))
        (0.0, 0) results
    in
    if den = 0 then nan else num /. float_of_int den
  in
  let reconciled =
    List.fold_left
      (fun a r ->
        a
        + List.length
            (List.filter
               (fun (_, what) -> contains_sub what "reconciliation done")
               r.Experiment.crash_events))
      0 results
  in
  let crash = reconvergence_crash spec in
  let metrics =
    delays
    @ [
        (* Warm switch restarts are restart-driven, not timeout-driven:
           time back to steady state tracks the scheduled outage plus a
           reconnect probe and a handshake's worth of resync. *)
        mk_metric "recovery_time_s" crash.Sdn_sim.Faults.down_s recovery_mean
          tol_recovery;
        (* Every crash must end in exactly one completed flow-state
           reconciliation; nan/0 here means the node never recovered. *)
        mk_metric "reconciliations_per_crash" 1.0
          (if crashes = 0 then nan
           else float_of_int reconciled /. float_of_int crashes)
          tol_exact;
      ]
  in
  {
    regime = "reconverge";
    profile = Ctl.profile_to_string spec.sp_profile;
    target = spec.sp_target;
    lambda_pps = spec.sp_lambda;
    rate_mbps = rate_mbps_of spec.sp_lambda;
    metrics;
    p_ok = List.for_all (fun m -> m.m_ok) metrics;
  }

let reconvergence ?(check = false) ~jobs () =
  let grid = reconvergence_grid in
  let specs =
    List.filter
      (fun s -> match s.sp_regime with Jackson_r -> true | _ -> false)
      (specs_of grid)
  in
  let configs =
    Array.of_list
      (List.concat
         (List.mapi
            (fun spec_idx spec ->
              List.init grid.reps (fun rep ->
                  reconvergence_config_of spec ~spec_idx ~rep ~check))
            specs))
  in
  let labels =
    Array.of_list
      (List.concat
         (List.map
            (fun spec ->
              List.init grid.reps (fun rep ->
                  Printf.sprintf "reconverge/%s/rho=%g/rep=%d"
                    (Ctl.profile_to_string spec.sp_profile)
                    spec.sp_target rep))
            specs))
  in
  let results =
    Exec.run_experiments ~label:(fun i -> labels.(i)) ~jobs configs
  in
  let points =
    List.mapi
      (fun spec_idx spec ->
        let slice =
          List.init grid.reps (fun rep -> results.((spec_idx * grid.reps) + rep))
        in
        reconvergence_point_of spec slice)
      specs
  in
  {
    points;
    ok = List.for_all (fun p -> p.p_ok) points;
    violations =
      Array.fold_left
        (fun acc (r : Experiment.result) -> acc + r.Experiment.check_violations)
        0 results;
  }

(* ---- Rendering ---- *)

let f6 v = Printf.sprintf "%.6g" v

let rows_of report =
  List.concat_map
    (fun p ->
      List.map
        (fun m ->
          let bound = Float.max m.tol.abs (m.tol.rel *. Float.abs m.predicted) in
          [
            p.regime;
            p.profile;
            f6 p.target;
            f6 p.lambda_pps;
            f6 p.rate_mbps;
            m.m_name;
            f6 m.predicted;
            f6 m.observed;
            f6 (Float.abs (m.predicted -. m.observed));
            f6 bound;
            (if m.m_ok then "ok" else "FAIL");
          ])
        p.metrics)
    report.points

let csv_header =
  [
    "regime"; "profile"; "target"; "lambda_pps"; "rate_mbps"; "metric";
    "predicted"; "observed"; "abs_error"; "tolerance"; "status";
  ]

let csv report = Sdn_measure.Report.csv ~header:csv_header ~rows:(rows_of report)

let summary report =
  let table = Sdn_measure.Report.table ~header:csv_header ~rows:(rows_of report) in
  let metrics = List.concat_map (fun p -> p.metrics) report.points in
  let failed = List.length (List.filter (fun m -> not m.m_ok) metrics) in
  Printf.sprintf "%s\n\n%s: %d points, %d metrics, %d out of tolerance%s\n"
    table
    (if report.ok then "AGREEMENT" else "DIVERGENCE")
    (List.length report.points)
    (List.length metrics) failed
    (if report.violations > 0 then
       Printf.sprintf " (%d runtime-check violations)" report.violations
     else "")
