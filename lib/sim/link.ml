type 'a t = {
  engine : Engine.t;
  name : string;
  bandwidth_bps : float;
  propagation_s : float;
  capture : (time:float -> size:int -> 'a -> unit) option;
  loss : (float * Rng.t) option;
  faults : Faults.t option;
  receiver : 'a -> unit;
  mutable busy_until : float;
  mutable bytes_sent : int;
  mutable messages_sent : int;
  mutable messages_lost : int;
  mutable backlog_bytes : int;
}

let create engine ~name ~bandwidth_bps ~propagation_s ?capture ?loss ?faults
    ~receiver () =
  if bandwidth_bps <= 0.0 then invalid_arg "Link.create: bandwidth must be positive";
  if propagation_s < 0.0 then invalid_arg "Link.create: negative propagation";
  (match loss with
  | Some (rate, _) when rate < 0.0 || rate > 1.0 ->
      invalid_arg "Link.create: loss rate out of [0, 1]"
  | Some _ | None -> ());
  {
    engine;
    name;
    bandwidth_bps;
    propagation_s;
    capture;
    loss;
    faults;
    receiver;
    busy_until = Engine.now engine;
    bytes_sent = 0;
    messages_sent = 0;
    messages_lost = 0;
    backlog_bytes = 0;
  }

let send t ~size payload =
  if size < 0 then invalid_arg "Link.send: negative size";
  let now = Engine.now t.engine in
  let start = Float.max now t.busy_until in
  let tx = Units.transmission_time ~bytes:size ~bandwidth_bps:t.bandwidth_bps in
  t.busy_until <- start +. tx;
  t.bytes_sent <- t.bytes_sent + size;
  t.messages_sent <- t.messages_sent + 1;
  t.backlog_bytes <- t.backlog_bytes + size;
  (match t.capture with
  | Some f -> f ~time:start ~size payload
  | None -> ());
  let lost =
    match t.loss with
    | Some (rate, rng) -> rate > 0.0 && Rng.float rng 1.0 < rate
    | None -> false
  in
  (* The fault plan is consulted once per message even when the legacy
     loss model already dropped it, so the fault schedule stays a pure
     function of (seed, spec, message sequence). *)
  let lost, jitter_s =
    match t.faults with
    | None -> (lost, 0.0)
    | Some plan -> (
        match Faults.judge plan ~now with
        | Faults.Drop _ -> (true, 0.0)
        | Faults.Deliver { jitter_s } -> (lost, jitter_s))
  in
  let deliver_at = t.busy_until +. t.propagation_s +. jitter_s in
  ignore
    (Engine.schedule_at t.engine deliver_at (fun () ->
         t.backlog_bytes <- t.backlog_bytes - size;
         if lost then t.messages_lost <- t.messages_lost + 1
         else t.receiver payload))

let name t = t.name
let bandwidth_bps t = t.bandwidth_bps
let bytes_sent t = t.bytes_sent
let messages_sent t = t.messages_sent
let messages_lost t = t.messages_lost
let busy_until t = t.busy_until
let backlog_bytes t = t.backlog_bytes

let utilization t ~since ~until_ =
  let span = until_ -. since in
  if span <= 0.0 then 0.0
  else begin
    let busy =
      Units.bytes_to_bits t.bytes_sent /. t.bandwidth_bps
    in
    Float.min 1.0 (busy /. span)
  end

let reset_counters t =
  t.bytes_sent <- 0;
  t.messages_sent <- 0
