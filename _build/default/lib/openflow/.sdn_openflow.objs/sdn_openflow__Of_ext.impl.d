lib/openflow/of_ext.ml: Bytes Float Format Int32 Printf
