examples/quickstart.mli:
