(* Command-line driver for the typedtree analyzer: walk the given
   directories for .cmt artifacts (or take individual .cmt files),
   run the whole-program analysis, and fail with exit 1 when any
   finding survives its waivers. Wired to the [@analyze] dune alias,
   which runs it from _build/default after @check has produced the
   cmts for lib/, bin/ and bench/. *)

let usage = "sdn_analyze [--json|--sarif] [--model-unit NAME] DIR|FILE.cmt..."

(* Unlike the lint's source walk this must descend into dot-directories:
   dune hides the artifacts under <dir>/.<lib>.objs/byte/. *)
let rec collect_cmt acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> collect_cmt acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let () =
  let json = ref false in
  let sarif = ref false in
  let model_units = ref [] in
  let roots = ref [] in
  Arg.parse
    [
      ("--json", Arg.Set json, " emit the findings as a JSON array");
      ( "--sarif",
        Arg.Set sarif,
        " emit the findings as a SARIF 2.1.0 log (code-scanning upload)" );
      ( "--model-unit",
        Arg.String (fun m -> model_units := m :: !model_units),
        "NAME hold unit NAME to the oracle-purity contract (repeatable)" );
    ]
    (fun root -> roots := root :: !roots)
    usage;
  let roots = List.rev !roots in
  if roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  List.iter
    (fun root ->
      if not (Sys.file_exists root) then begin
        Printf.eprintf "sdn_analyze: no such file or directory: %s\n" root;
        exit 2
      end)
    roots;
  (* Sorted artifact order keeps unit numbering — and therefore the
     report — deterministic regardless of readdir order. *)
  let files =
    List.sort String.compare (List.fold_left collect_cmt [] roots)
  in
  if files = [] then begin
    Printf.eprintf
      "sdn_analyze: no .cmt artifacts under the given roots (run `dune build \
       @check` first)\n";
    exit 2
  end;
  let findings, errors, stats =
    Analyze_core.analyze_files ~model_units:(List.rev !model_units) files
  in
  List.iter (fun msg -> Printf.eprintf "sdn_analyze: %s\n" msg) errors;
  if !sarif then
    print_string
      (Report_common.to_sarif ~tool:"sdn_analyze" ~rules:Analyze_core.rules
         findings)
  else if !json then print_string (Report_common.to_json findings)
  else begin
    List.iter
      (fun f -> Format.printf "%a@." Report_common.pp_finding f)
      findings;
    match findings with
    | [] ->
        Printf.printf
          "analyze: clean (%d units, %d defs, %d of them reachable from %d \
           Task_pool call sites)\n"
          stats.Analyze_core.units stats.Analyze_core.defs
          stats.Analyze_core.task_reachable stats.Analyze_core.task_roots
    | _ ->
        Printf.printf "analyze: %d finding(s) in %d units\n"
          (List.length findings) stats.Analyze_core.units
  end;
  if errors <> [] then exit 2;
  if findings <> [] then exit 1
