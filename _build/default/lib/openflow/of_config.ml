type t = { flags : int; miss_send_len : int }

let default = { flags = 0; miss_send_len = Of_packet_in.default_miss_send_len }

let body_size = 4

let write_body t buf off =
  Bytes.set_uint16_be buf off t.flags;
  Bytes.set_uint16_be buf (off + 2) t.miss_send_len

let read_body buf off ~len =
  if len < body_size then Error "Of_config.read_body: truncated"
  else
    Ok
      {
        flags = Bytes.get_uint16_be buf off;
        miss_send_len = Bytes.get_uint16_be buf (off + 2);
      }

let equal a b = a.flags = b.flags && a.miss_send_len = b.miss_send_len

let pp fmt t =
  Format.fprintf fmt "config{flags=%d miss_send_len=%d}" t.flags t.miss_send_len
