type t = { dst : Mac.t; src : Mac.t; ethertype : int }

let size = 14

let ethertype_ipv4 = 0x0800
let ethertype_arp = 0x0806

let write t buf off =
  Mac.write t.dst buf off;
  Mac.write t.src buf (off + 6);
  Bytes.set_uint16_be buf (off + 12) t.ethertype

let read buf off =
  if off + size > Bytes.length buf then Error "Ethernet.read: truncated header"
  else
    Ok
      {
        dst = Mac.read buf off;
        src = Mac.read buf (off + 6);
        ethertype = Bytes.get_uint16_be buf (off + 12);
      }

let equal a b =
  Mac.equal a.dst b.dst && Mac.equal a.src b.src && a.ethertype = b.ethertype

let pp fmt t =
  Format.fprintf fmt "eth{%a -> %a, type=0x%04x}" Mac.pp t.src Mac.pp t.dst
    t.ethertype
