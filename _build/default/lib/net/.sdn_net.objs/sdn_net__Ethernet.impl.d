lib/net/ethernet.ml: Bytes Format Mac
