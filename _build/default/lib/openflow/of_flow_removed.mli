(** OpenFlow 1.0 [FLOW_REMOVED] message body.

    Sent by the switch when a rule whose [FLOW_MOD] set the
    [send_flow_rem] flag leaves the table — by idle timeout, hard
    timeout or deletion. This is how a controller can watch the
    rule-eviction dynamics the paper's Section VI.B discussion turns
    on (an idle TCP connection losing its rule while still open). *)

type reason = Idle_timeout | Hard_timeout | Delete

type t = {
  match_ : Of_match.t;
  cookie : int64;
  priority : int;
  reason : reason;
  duration_sec : int32;
  duration_nsec : int32;
  idle_timeout : int;
  packet_count : int64;
  byte_count : int64;
}

val body_size : int
(** 80 bytes. *)

val write_body : t -> Bytes.t -> int -> unit
val read_body : Bytes.t -> int -> len:int -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
