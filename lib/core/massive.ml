(* The [massive] extreme-scale scenario. Phase 1 saturates the
   allocation-free Frame_pool/Fast_path kernel; phase 2 shards an
   extreme Poisson flow count over the full switch/controller
   pipeline via Exec. Both phases return deterministic counters only
   — the CLI owns the stopwatch. *)

open Sdn_net

type datapath_stats = {
  dp_flows : int;
  dp_packets : int;
  dp_forwarded : int;
  dp_misses : int;
  dp_drops : int;
  dp_pool_slots : int;
  dp_check_violations : int;
  dp_check_report : string option;
}

(* Microflow [f]'s installed 5-tuple. Source addresses enumerate
   10.0.0.0/8, so up to 2^24 flows stay distinct; the miss variant
   swaps in an 12.0.0.0/8 source no install ever uses. *)
let src_ip_of ~miss f =
  (if miss then 0x0C000000 else 0x0A000000) lor (f land 0xFFFFFF)

let dst_ip = 0x0B000001
let src_port = 4242
let dst_port = 9
let drain_batch = 64

let template_frame () =
  Packet.encode
    (Packet.udp
       ~src_mac:(Mac.of_string_exn "02:00:00:00:00:01")
       ~dst_mac:(Mac.of_string_exn "02:00:00:00:00:02")
       ~src_ip:(Ip.make 10 0 0 1) ~dst_ip:(Ip.make 11 0 0 1) ~src_port
       ~dst_port ~ttl:64
       ~payload:(Bytes.make 6 'x')
       ())

let run_datapath ?(flows = 10_000) ?(packets = 1_000_000) ?(check = false) () =
  if flows <= 0 || flows > 0xFFFFFF then
    invalid_arg "Massive.run_datapath: flows must be in [1, 2^24]";
  if packets < 0 then invalid_arg "Massive.run_datapath: negative packets";
  let slots = 512 and n_ports = 4 in
  let pool = Frame_pool.create ~slots ~slot_size:64 () in
  let table_capacity = max 1024 (2 * flows) in
  let fp =
    Sdn_switch.Fast_path.create ~pool ~n_ports ~table_capacity
      ~ring_capacity:1024 ()
  in
  let checker = if check then Some (Sdn_check.Check.create ()) else None in
  let note f = match checker with None -> () | Some c -> f c in
  note (fun c ->
      Sdn_check.Check.note_frame_pool_create c ~time:0.0 ~pool:"massive"
        ~slots);
  for f = 0 to flows - 1 do
    let ok =
      Sdn_switch.Fast_path.install fp ~proto:Ipv4.proto_udp
        ~src_ip:(src_ip_of ~miss:false f) ~dst_ip ~src_port ~dst_port
        ~out_port:(f land (n_ports - 1))
    in
    if not ok then invalid_arg "Massive.run_datapath: fast-path table full"
  done;
  let template = template_frame () in
  let forwarded = ref 0 and misses = ref 0 and drops = ref 0 in
  (* Per-packet notes match on the checker directly: the [note (fun c
     -> ...)] shape used for one-time notes would cons a fresh closure
     per packet, which the allocation-free loop cannot afford. *)
  let note_claim () =
    match checker with
    | None -> ()
    | Some c ->
        Sdn_check.Check.note_frame_pool_claim c ~time:0.0 ~pool:"massive"
          ~free:(Frame_pool.free_count pool)
  and note_release () =
    match checker with
    | None -> ()
    | Some c ->
        Sdn_check.Check.note_frame_pool_release c ~time:0.0 ~pool:"massive"
          ~free:(Frame_pool.free_count pool)
  in
  let drain_rings () =
    for port = 0 to n_ports - 1 do
      let continue = ref true in
      while !continue do
        let slot = Sdn_switch.Fast_path.dequeue fp port in
        if slot < 0 then continue := false
        else begin
          incr forwarded;
          ignore (Frame_pool.release pool slot : bool);
          note_release ()
        end
      done
    done
  in
  for i = 0 to packets - 1 do
    let miss = i mod 97 = 0 in
    let f = i mod flows in
    let slot = Frame_pool.alloc pool in
    (* drain_batch < slots, so the pool can never run dry here *)
    assert (slot >= 0);
    note_claim ();
    Frame_pool.load pool slot template;
    Frame_pool.set_u32 pool slot Frame_pool.off_src_ip (src_ip_of ~miss f);
    let port = Sdn_switch.Fast_path.process fp slot in
    if port < 0 then begin
      if port = -1 then incr misses else incr drops;
      ignore (Frame_pool.release pool slot : bool);
      note_release ()
    end;
    if i mod drain_batch = drain_batch - 1 then drain_rings ()
  done;
  drain_rings ();
  Frame_pool.wipe pool;
  note (fun c ->
      Sdn_check.Check.note_frame_pool_wipe c ~time:0.0 ~pool:"massive"
        ~free:(Frame_pool.free_count pool));
  let dp_check_violations, dp_check_report =
    match checker with
    | None -> (0, None)
    | Some c ->
        let n = List.length (Sdn_check.Check.violations c) in
        (n, if n = 0 then None else Some (Sdn_check.Check.report c))
  in
  {
    dp_flows = flows;
    dp_packets = packets;
    dp_forwarded = !forwarded;
    dp_misses = !misses;
    dp_drops = !drops;
    dp_pool_slots = slots;
    dp_check_violations;
    dp_check_report;
  }

(* ---- phase 2: the full pipeline, sharded ---- *)

type pipeline_stats = {
  pl_shards : int;
  pl_flows : int;
  pl_packets_in : int;
  pl_packets_out : int;
  pl_flows_completed : int;
  pl_sim_events : int;
  pl_check_violations : int;
  pl_check_reports : string list;
}

let shard_config ~event_queue ~check ~seed ~n_flows =
  {
    Config.default with
    Config.workload = Config.Poisson_flows { n_flows };
    seed;
    rate_mbps = 100.0;
    buffer_capacity = 4096;
    flow_table_capacity = 65536;
    check;
    event_queue;
  }

let run_pipeline ?(flows = 1_000_000) ?(shards = 20) ?(event_queue = `Heap)
    ?(check = false) ?(jobs = 1) ?(seed = 1) () =
  if flows <= 0 then invalid_arg "Massive.run_pipeline: non-positive flows";
  if shards <= 0 then invalid_arg "Massive.run_pipeline: non-positive shards";
  let shards = min shards flows in
  let base = flows / shards and extra = flows mod shards in
  let configs =
    Array.init shards (fun i ->
        let n_flows = base + if i < extra then 1 else 0 in
        shard_config ~event_queue ~check ~seed:(seed + i) ~n_flows)
  in
  let results =
    Exec.run_experiments
      ~label:(Printf.sprintf "massive/shard-%d")
      ~jobs configs
  in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 results in
  let reports =
    List.filter_map
      (fun (i, r) ->
        Option.map
          (Printf.sprintf "shard %d:\n%s" i)
          r.Experiment.check_report)
      (Array.to_list (Array.mapi (fun i r -> (i, r)) results))
  in
  {
    pl_shards = shards;
    pl_flows = flows;
    pl_packets_in = sum (fun r -> r.Experiment.packets_in);
    pl_packets_out = sum (fun r -> r.Experiment.packets_out);
    pl_flows_completed = sum (fun r -> r.Experiment.flows_completed);
    pl_sim_events = sum (fun r -> r.Experiment.sim_events);
    pl_check_violations = sum (fun r -> r.Experiment.check_violations);
    pl_check_reports = reports;
  }
