lib/core/sweep.mli: Config Experiment
