(* The deterministic multicore executor: Task_pool semantics, the
   jobs-equivalence property (parallel output byte-identical to the
   sequential reference path) across every sweep family, and the
   parallel-equivalence replay check. *)

open Sdn_core

(* ---- Task_pool semantics ---- *)

let test_pool_indexed_results () =
  let expected = Array.init 37 (fun i -> i * i) in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d merges by index" jobs)
        expected
        (Sdn_sim.Task_pool.run ~oversubscribe:true ~jobs ~tasks:37 (fun i -> i * i)))
    [ 1; 2; 4; 8 ]

let test_pool_more_jobs_than_tasks () =
  Alcotest.(check (array int))
    "jobs clamp to tasks" [| 0; 10; 20 |]
    (Sdn_sim.Task_pool.run ~oversubscribe:true ~jobs:16 ~tasks:3 (fun i -> 10 * i))

let test_pool_edge_sizes () =
  Alcotest.(check (array int))
    "zero tasks" [||]
    (Sdn_sim.Task_pool.run ~jobs:4 ~tasks:0 (fun i -> i));
  Alcotest.(check (array int))
    "one task" [| 42 |]
    (Sdn_sim.Task_pool.run ~jobs:4 ~tasks:1 (fun _ -> 42));
  Alcotest.check_raises "negative tasks rejected"
    (Invalid_argument "Task_pool.run: negative task count") (fun () ->
      ignore (Sdn_sim.Task_pool.run ~jobs:2 ~tasks:(-1) (fun i -> i)))

let test_pool_exception_propagates () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "task failure re-raised at jobs=%d" jobs)
        (Failure "task 5 exploded")
        (fun () ->
          ignore
            (Sdn_sim.Task_pool.run ~oversubscribe:true ~jobs ~tasks:12 (fun i ->
                 if i = 5 then failwith "task 5 exploded" else i))))
    [ 1; 4 ]

let test_pool_map_list () =
  let xs = [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ] in
  let f s = s ^ s in
  List.iter
    (fun jobs ->
      Alcotest.(check (list string))
        (Printf.sprintf "map_list at jobs=%d is List.map" jobs)
        (List.map f xs)
        (Sdn_sim.Task_pool.map_list ~oversubscribe:true ~jobs f xs))
    [ 1; 3 ];
  Alcotest.(check (list int))
    "map_list on []" []
    (Sdn_sim.Task_pool.map_list ~jobs:4 (fun x -> x) [])

let test_recommended_jobs_positive () =
  Alcotest.(check bool)
    "recommended_jobs >= 1" true
    (Sdn_sim.Task_pool.recommended_jobs () >= 1)

(* ---- Result equality primitives the equivalence gate runs on ---- *)

let tiny_config ?(check = false) ~rate_mbps ~seed () =
  {
    (Config.exp_a ~mechanism:Config.Packet_granularity ~buffer_capacity:256
       ~rate_mbps ~seed)
    with
    Config.workload = Config.Exp_a { n_flows = 30 };
    check;
  }

let test_diff_result_self_empty () =
  let r = Experiment.run (tiny_config ~rate_mbps:30.0 ~seed:5 ()) in
  Alcotest.(check (list string)) "no field differs from itself" []
    (Experiment.diff_result r r);
  Alcotest.(check bool) "equal_result agrees" true (Experiment.equal_result r r)

let test_diff_result_names_field () =
  let r = Experiment.run (tiny_config ~rate_mbps:30.0 ~seed:5 ()) in
  let doctored =
    { r with Experiment.ctrl_load_up_mbps = r.Experiment.ctrl_load_up_mbps +. 1.0 }
  in
  Alcotest.(check (list string))
    "exactly the doctored field" [ "ctrl_load_up_mbps" ]
    (Experiment.diff_result r doctored);
  Alcotest.(check bool) "equal_result disagrees" false
    (Experiment.equal_result r doctored)

let test_replay_index_deterministic () =
  let configs =
    Array.init 7 (fun i -> tiny_config ~rate_mbps:30.0 ~seed:(100 + i) ())
  in
  let idx = Exec.replay_index configs in
  Alcotest.(check bool) "in range" true (idx >= 0 && idx < 7);
  Alcotest.(check int) "stable across calls" idx (Exec.replay_index configs);
  Alcotest.(check int) "empty grid" 0 (Exec.replay_index [||])

(* ---- Jobs-equivalence: every sweep family, jobs in {1, 2, 4} ---- *)

let run_tiny_sweep ~jobs =
  Sweep.run ~label:"par" ~rates:[ 20.0; 60.0 ] ~reps:2 ~jobs
    (fun ~rate_mbps ~seed -> tiny_config ~rate_mbps ~seed ())

let check_series_equal what (a : Sweep.series) (b : Sweep.series) =
  Alcotest.(check string) (what ^ ": label") a.Sweep.label b.Sweep.label;
  Alcotest.(check int)
    (what ^ ": points")
    (List.length a.Sweep.points)
    (List.length b.Sweep.points);
  List.iter2
    (fun (pa : Sweep.point) (pb : Sweep.point) ->
      Alcotest.(check (float 0.0)) (what ^ ": rate") pa.Sweep.rate_mbps
        pb.Sweep.rate_mbps;
      Alcotest.(check int)
        (what ^ ": reps")
        (List.length pa.Sweep.results)
        (List.length pb.Sweep.results);
      List.iter2
        (fun ra rb ->
          Alcotest.(check (list string)) (what ^ ": result fields") []
            (Experiment.diff_result ra rb))
        pa.Sweep.results pb.Sweep.results)
    a.Sweep.points b.Sweep.points

let test_sweep_jobs_equivalence () =
  let reference = run_tiny_sweep ~jobs:1 in
  List.iter
    (fun jobs ->
      check_series_equal
        (Printf.sprintf "jobs=%d vs jobs=1" jobs)
        reference (run_tiny_sweep ~jobs))
    [ 2; 4 ]

let test_chaos_loss_jobs_equivalence () =
  let base seed = { (Chaos.default_base ~seed) with Config.rate_mbps = 20.0 } in
  let run ~jobs = Chaos.run ~loss_rates:[ 0.0; 0.1 ] ~jobs ~base:(base 7) () in
  let reference = run ~jobs:1 and parallel = run ~jobs:4 in
  Alcotest.(check int) "same point count" (List.length reference)
    (List.length parallel);
  List.iter2
    (fun (a : Chaos.point) (b : Chaos.point) ->
      Alcotest.(check (float 0.0)) "loss rate" a.Chaos.loss_rate
        b.Chaos.loss_rate;
      Alcotest.(check string) "mechanism label"
        (Config.label a.Chaos.config)
        (Config.label b.Chaos.config);
      Alcotest.(check (list string)) "result fields" []
        (Experiment.diff_result a.Chaos.result b.Chaos.result))
    reference parallel

let test_chaos_outage_jobs_equivalence () =
  let base seed = Chaos.default_outage_base ~seed in
  let run ~jobs = Chaos.run_outage ~durations:[ 0.05 ] ~jobs ~base:(base 7) () in
  let reference = run ~jobs:1 and parallel = run ~jobs:4 in
  Alcotest.(check int) "same point count" (List.length reference)
    (List.length parallel);
  List.iter2
    (fun (a : Chaos.outage_point) (b : Chaos.outage_point) ->
      Alcotest.(check (float 0.0)) "duration" a.Chaos.duration b.Chaos.duration;
      Alcotest.(check bool) "fail mode" true
        (a.Chaos.fail_mode = b.Chaos.fail_mode);
      Alcotest.(check (list string)) "result fields" []
        (Experiment.diff_result a.Chaos.result b.Chaos.result))
    reference parallel

let test_calibration_jobs_equivalence () =
  let reference = Calibration.sanity ~jobs:1 () in
  let parallel = Calibration.sanity ~jobs:4 () in
  Alcotest.(check (list (pair string bool)))
    "verdict list identical" reference parallel

(* ---- The parallel-equivalence replay check ---- *)

let test_clean_parallel_run_has_no_violations () =
  (* check armed + jobs > 1 exercises the sampled sequential replay;
     a clean deterministic workload must come back violation-free and
     byte-identical to the sequential reference. *)
  let run ~jobs =
    Sweep.run ~label:"chk" ~rates:[ 20.0; 60.0 ] ~reps:2 ~jobs
      (fun ~rate_mbps ~seed -> tiny_config ~check:true ~rate_mbps ~seed ())
  in
  let reference = run ~jobs:1 and parallel = run ~jobs:4 in
  check_series_equal "checked jobs=4 vs jobs=1" reference parallel;
  List.iter
    (fun (p : Sweep.point) ->
      List.iter
        (fun (r : Experiment.result) ->
          Alcotest.(check int) "no violations" 0 r.Experiment.check_violations;
          Alcotest.(check string) "empty report" ""
            (Option.value ~default:"" r.Experiment.check_report))
        p.Sweep.results)
    parallel.Sweep.points

let test_note_parallel_replay_disagreement () =
  let check = Sdn_check.Check.create () in
  Sdn_check.Check.note_parallel_replay check ~time:0.0 ~task:"t/rate=20/rep=0"
    ~equal:true ~detail:"";
  Alcotest.(check int) "agreement records no violation" 0
    (Sdn_check.Check.violation_count check);
  Sdn_check.Check.note_parallel_replay check ~time:0.0 ~task:"t/rate=20/rep=1"
    ~equal:false ~detail:"fields: packet_in_count";
  Alcotest.(check int) "disagreement is a violation" 1
    (Sdn_check.Check.violation_count check);
  match Sdn_check.Check.violations check with
  | [ v ] ->
      Alcotest.(check string) "invariant id" "parallel-equivalence"
        v.Sdn_check.Check.invariant;
      Alcotest.(check bool) "detail names the task" true
        (let s = v.Sdn_check.Check.detail in
         let sub = "t/rate=20/rep=1" in
         let ls = String.length sub and ln = String.length s in
         let rec go i = i + ls <= ln && (String.sub s i ls = sub || go (i + 1)) in
         go 0)
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let suite =
  [
    Alcotest.test_case "pool merges by task index" `Quick
      test_pool_indexed_results;
    Alcotest.test_case "pool clamps jobs to tasks" `Quick
      test_pool_more_jobs_than_tasks;
    Alcotest.test_case "pool edge sizes" `Quick test_pool_edge_sizes;
    Alcotest.test_case "pool re-raises task failures" `Quick
      test_pool_exception_propagates;
    Alcotest.test_case "map_list preserves order" `Quick test_pool_map_list;
    Alcotest.test_case "recommended_jobs is positive" `Quick
      test_recommended_jobs_positive;
    Alcotest.test_case "diff_result: identical results" `Quick
      test_diff_result_self_empty;
    Alcotest.test_case "diff_result names the differing field" `Quick
      test_diff_result_names_field;
    Alcotest.test_case "replay_index is deterministic" `Quick
      test_replay_index_deterministic;
    Alcotest.test_case "sweep: jobs in {1,2,4} identical" `Slow
      test_sweep_jobs_equivalence;
    Alcotest.test_case "chaos loss sweep: jobs 4 = jobs 1" `Slow
      test_chaos_loss_jobs_equivalence;
    Alcotest.test_case "chaos outage sweep: jobs 4 = jobs 1" `Slow
      test_chaos_outage_jobs_equivalence;
    Alcotest.test_case "calibration: jobs 4 = jobs 1" `Slow
      test_calibration_jobs_equivalence;
    Alcotest.test_case "checked parallel run stays clean" `Slow
      test_clean_parallel_run_has_no_violations;
    Alcotest.test_case "replay disagreement is a violation" `Quick
      test_note_parallel_replay_disagreement;
  ]
