lib/switch/flow_buffer.mli: Bytes Engine Flow_key Sdn_net Sdn_sim
