(** Exact-match microflow cache — the switch's fast path.

    Open vSwitch splits packet classification into a slow path (full
    flow-table lookup with wildcard matching) and a fast path (an
    exact-match cache keyed on the packet's entire header projection);
    "An Empirical Model of Packet Processing Delay of the Open vSwitch"
    measures exactly this split. This module is the cache: a bounded
    hash table from a packet's match-relevant header fields to the
    result of the last slow-path lookup for an identical packet.

    The cache is {e sound by construction}: the key covers every field
    {!Sdn_openflow.Of_match.matches} can consult (ingress port, both
    MACs, ToS, and the IPv4 5-tuple), so two packets with equal keys
    are indistinguishable to every possible rule, and {!Flow_table}
    flushes the cache on any table mutation (flow-mod, expiry,
    eviction). Packets without a flow key (ARP, raw L3/L4) never enter
    the cache and always take the slow path. *)

open Sdn_net

type key
(** A packet's match-relevant header projection. *)

val key_of_packet : in_port:int -> Packet.t -> key option
(** [None] for packets that cannot be cached (no IPv4 TCP/UDP
    5-tuple). *)

val key_equal : key -> key -> bool
val key_hash : key -> int
val pp_key : Format.formatter -> key -> unit

type 'v t
(** A cache mapping keys to ['v] (the flow table stores the full
    lookup result, [Flow_entry.t option] — negative results are cached
    too, since a miss is the expensive case the paper measures). *)

val create : ?capacity:int -> unit -> 'v t
(** [capacity] (default 8192) bounds the entry count; on overflow the
    whole cache is reset (deterministic, and invisible in steady
    state). Raises [Invalid_argument] if [capacity <= 0]. *)

val find : 'v t -> key -> 'v option
(** Cached result for [key], counting a hit or miss. *)

val add : 'v t -> key -> 'v -> unit

val flush : 'v t -> unit
(** Drop every entry (called by {!Flow_table} on any mutation). *)

(** {2 Introspection} *)

val length : 'v t -> int
val capacity : 'v t -> int

val hits : 'v t -> int
(** Lookups answered from the cache. *)

val misses : 'v t -> int
(** Lookups that fell through to the slow path (and populated the
    cache). *)

val flushes : 'v t -> int
(** Invalidation events (table mutations plus overflow resets). *)
