(** Deterministic fixed-size domain pool for independent tasks.

    The paper's methodology is embarrassingly parallel: a sweep is a
    grid of (rate, repetition) replications, every one an independent
    simulation with its own seed and its own {!Engine}. This module
    runs such a grid on OCaml 5 domains while keeping the repository's
    headline guarantee intact: results are merged {e by task index,
    never by completion order}, so a parallel run returns exactly the
    array the sequential reference path returns.

    Determinism contract (what callers must guarantee):

    - each task [f i] depends only on [i] and immutable captured data —
      no mutable toplevel state (the [global-mutable] lint rule rejects
      it), no host clock, no unseeded entropy;
    - tasks do not write to shared structures; every result is returned
      from [f] and placed into slot [i] of the result array.

    Under that contract, [run ~jobs:n f] is observationally equal to
    [run ~jobs:1 f] for every [n], which is what the
    parallel-equivalence replay check and the jobs-equivalence property
    tests assert. *)

val run : ?oversubscribe:bool -> jobs:int -> tasks:int -> (int -> 'a) -> 'a array
(** [run ~jobs ~tasks f] evaluates [f 0 .. f (tasks - 1)] and returns
    the results indexed by task. [jobs <= 1] (or [tasks <= 1]) runs
    every task sequentially in the calling domain, in index order — the
    reference implementation. [jobs > 1] spawns [min jobs tasks]
    domains that drain a chunked atomic work queue; completion order is
    arbitrary but the merge is by index, so the result array is
    identical to the sequential one.

    The requested width is additionally capped at
    {!recommended_jobs}[ ()] unless [oversubscribe] is [true]:
    domains beyond the physical cores add no parallelism for these
    CPU-bound tasks but turn every minor collection into a
    cross-domain stop-the-world, which made oversubscribed sweeps
    several times {e slower} than sequential on small hosts. The cap
    is purely an execution-width decision — by the determinism
    contract it can never change results. [oversubscribe:true] forces
    the asked-for width (the test suite uses it so the parallel
    machinery is exercised even on a single-core host).

    Worker chunks are [max 1 (tasks / (8 * jobs))] indices wide: wide
    enough to keep queue contention negligible, narrow enough that a
    straggler task cannot serialize the tail of the grid.

    If any task raises, the first exception (by completion order) is
    re-raised in the caller after every worker has been joined; the
    partial results are discarded. *)

val map_list : ?oversubscribe:bool -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ~jobs f xs] is [List.map f xs] with the applications
    distributed over the pool. Same ordering, determinism and
    width-cap guarantees as {!run}; [jobs <= 1] is exactly
    [List.map f xs]. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped to at least 1 — a
    sensible upper bound for [~jobs] on the current host. Callers
    decide; nothing in this module sizes itself implicitly. *)
