(* Open Jackson networks: solve the traffic equations, then treat each
   station as an independent M/M/c queue (the product form). *)

type node = { name : string; service : float; servers : int }

type station = {
  node : node;
  visits : float;
  lambda : float;
  queue : Mm1.t;
}

type t = {
  arrival_rate : float;
  stations : station list;
  stable : bool;
}

let check_node n =
  if not (Float.is_finite n.service) || n.service <= 0.0 then
    invalid_arg ("Jackson: node " ^ n.name ^ " needs a positive service time");
  if n.servers < 1 then
    invalid_arg ("Jackson: node " ^ n.name ^ " needs at least one server")

let solve ~arrival_rate nodes =
  if not (Float.is_finite arrival_rate) || arrival_rate < 0.0 then
    invalid_arg "Jackson.solve: arrival rate must be finite and >= 0";
  let names = List.map (fun (n, _) -> n.name) nodes in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Jackson.solve: duplicate node names";
  let stations =
    List.map
      (fun (node, visits) ->
        check_node node;
        if not (Float.is_finite visits) || visits < 0.0 then
          invalid_arg ("Jackson.solve: node " ^ node.name ^ " visits < 0");
        let lambda = arrival_rate *. visits in
        let queue =
          Mm1.mmc ~lambda ~mu:(1.0 /. node.service) ~servers:node.servers
        in
        { node; visits; lambda; queue })
      nodes
  in
  {
    arrival_rate;
    stations;
    stable = List.for_all (fun s -> s.queue.Mm1.rho < 1.0) stations;
  }

let solve_routing ~external_arrivals ~routing ~nodes =
  let n = Array.length nodes in
  if Array.length external_arrivals <> n || Array.length routing <> n then
    invalid_arg "Jackson.solve_routing: shape mismatch";
  Array.iter
    (fun g ->
      if not (Float.is_finite g) || g < 0.0 then
        invalid_arg "Jackson.solve_routing: external arrivals must be >= 0")
    external_arrivals;
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Jackson.solve_routing: shape mismatch";
      let sum = Array.fold_left ( +. ) 0.0 row in
      Array.iter
        (fun p ->
          if not (Float.is_finite p) || p < 0.0 then
            invalid_arg "Jackson.solve_routing: routing entries must be >= 0")
        row;
      if sum > 1.0 +. 1e-12 then
        invalid_arg "Jackson.solve_routing: routing row sums above 1")
    routing;
  let gamma_total = Array.fold_left ( +. ) 0.0 external_arrivals in
  (* lambda = gamma + lambda P, iterated to a fixed point; converges
     geometrically for any substochastic routing with escape. *)
  let lambda = Array.copy external_arrivals in
  let next = Array.make n 0.0 in
  let delta = ref infinity in
  let iterations = ref 0 in
  while !delta > 1e-12 *. Float.max 1.0 gamma_total && !iterations < 10_000 do
    for j = 0 to n - 1 do
      next.(j) <- external_arrivals.(j);
      for i = 0 to n - 1 do
        next.(j) <- next.(j) +. (lambda.(i) *. routing.(i).(j))
      done
    done;
    delta := 0.0;
    for j = 0 to n - 1 do
      delta := Float.max !delta (Float.abs (next.(j) -. lambda.(j)));
      lambda.(j) <- next.(j)
    done;
    incr iterations
  done;
  let visits i =
    if gamma_total = 0.0 then 0.0 else lambda.(i) /. gamma_total
  in
  solve ~arrival_rate:gamma_total
    (List.init n (fun i -> (nodes.(i), visits i)))

let station t name =
  List.find (fun s -> String.equal s.node.name name) t.stations

let sojourn t name = (station t name).queue.Mm1.w
let queue_wait t name = (station t name).queue.Mm1.wq
let utilization t name = (station t name).queue.Mm1.rho

let mean_jobs t =
  List.fold_left (fun acc s -> acc +. s.queue.Mm1.l) 0.0 t.stations

let response_time t =
  if t.arrival_rate = 0.0 then 0.0 else mean_jobs t /. t.arrival_rate
