(* Fixed-size Domain.spawn pool over a chunked atomic work queue.
   Results are merged by task index, never by completion order — the
   parallel path must be byte-identical to the sequential reference
   path (see task_pool.mli for the full determinism contract). *)

let sequential ~tasks f =
  (* The reference implementation: index order, calling domain. *)
  Array.init tasks f

(* Workers claim [chunk] consecutive indices per queue round-trip.
   8 chunks per worker balances contention against stragglers. *)
let chunk_size ~jobs ~tasks = Stdlib.max 1 (tasks / (8 * jobs))

let parallel ~jobs ~tasks f =
  let results = Array.make tasks None in
  let next = Atomic.make 0 in
  let first_error = Atomic.make None in
  let chunk = chunk_size ~jobs ~tasks in
  let worker () =
    let stop = ref false in
    while not !stop do
      let start = Atomic.fetch_and_add next chunk in
      if start >= tasks then stop := true
      else
        let limit = Stdlib.min (start + chunk) tasks in
        for i = start to limit - 1 do
          match f i with
          | v -> results.(i) <- Some v
          | exception exn ->
              (* Remember the first failure and drain the queue so the
                 remaining workers stop claiming chunks. *)
              ignore (Atomic.compare_and_set first_error None (Some exn));
              Atomic.set next tasks;
              stop := true
        done
    done
  in
  let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join domains;
  (match Atomic.get first_error with Some exn -> raise exn | None -> ());
  Array.map
    (function
      | Some v -> v
      | None -> invalid_arg "Task_pool.run: task produced no result")
    results

let recommended_jobs () = Stdlib.max 1 (Domain.recommended_domain_count ())

(* Oversubscribing domains past the cores the runtime reports is a
   pure loss for CPU-bound tasks: no extra parallelism, but every
   minor collection becomes a cross-domain stop-the-world rendezvous.
   On a single-core host that made `--jobs 4` sweeps ~3x slower than
   sequential, so the width callers ask for is capped at the host's
   recommendation unless they explicitly opt out (the Task_pool test
   suite does, to exercise the domain machinery everywhere). *)
let run ?(oversubscribe = false) ~jobs ~tasks f =
  if tasks < 0 then invalid_arg "Task_pool.run: negative task count";
  let jobs = if oversubscribe then jobs else Stdlib.min jobs (recommended_jobs ()) in
  if tasks = 0 then [||]
  else if jobs <= 1 || tasks = 1 then sequential ~tasks f
  else parallel ~jobs:(Stdlib.min jobs tasks) ~tasks f

let map_list ?(oversubscribe = false) ~jobs f xs =
  if jobs <= 1 then List.map f xs
  else begin
    let items = Array.of_list xs in
    Array.to_list
      (run ~oversubscribe ~jobs ~tasks:(Array.length items) (fun i ->
           f items.(i)))
  end
