open Sdn_sim

type policy = Fifo | Strict_priority | Drr of { quantum : int }

type queue_config = {
  queue_id : int32;
  priority : int;
  weight : int;
  capacity : int;
}

let default_queue = { queue_id = 0l; priority = 0; weight = 1; capacity = 512 }

type class_queue = {
  config : queue_config;
  frames : (float * Bytes.t) Queue.t;  (** enqueue time, frame *)
  mutable deficit : int;  (** DRR byte credit *)
  mutable sent : int;
  mutable dropped : int;
  delays : Stats.t;
}

type t = {
  engine : Engine.t;
  link : Bytes.t Link.t;
  policy : policy;
  classes : class_queue array;  (** strict-priority order, best first *)
  mutable drr_cursor : int;
  mutable drr_visit_credited : bool;
  mutable pump_armed : bool;
}

let create engine ~link ~policy ~queues =
  if queues = [] then invalid_arg "Egress_queue.create: no queues";
  let ids = List.map (fun q -> q.queue_id) queues in
  if List.length (List.sort_uniq Int32.compare ids) <> List.length ids then
    invalid_arg "Egress_queue.create: duplicate queue ids";
  List.iter
    (fun q ->
      if q.weight <= 0 then invalid_arg "Egress_queue.create: weight must be positive";
      if q.capacity <= 0 then invalid_arg "Egress_queue.create: capacity must be positive")
    queues;
  let sorted =
    List.sort (fun a b -> Int.compare b.priority a.priority) queues
  in
  {
    engine;
    link;
    policy;
    classes =
      Array.of_list
        (List.map
           (fun config ->
             {
               config;
               frames = Queue.create ();
               deficit = 0;
               sent = 0;
               dropped = 0;
               delays = Stats.create ();
             })
           sorted);
    drr_cursor = 0;
    drr_visit_credited = false;
    pump_armed = false;
  }

let class_for t queue_id =
  let found = ref t.classes.(0) in
  Array.iter
    (fun c -> if Int32.equal c.config.queue_id queue_id then found := c)
    t.classes;
  !found

let backlog t =
  Array.fold_left (fun acc c -> acc + Queue.length c.frames) 0 t.classes

(* Pick the next class to serve, or None if everything is empty. *)
let next_class t =
  match t.policy with
  | Fifo | Strict_priority ->
      (* Classes are stored best-priority-first; FIFO has one queue. *)
      let found = ref None in
      Array.iter
        (fun c -> if !found = None && not (Queue.is_empty c.frames) then found := Some c)
        t.classes;
      !found
  | Drr { quantum } ->
      let n = Array.length t.classes in
      if backlog t = 0 then None
      else begin
        (* Classic deficit round robin (Shreedhar & Varghese): each
           visit to a non-empty class credits it quantum * weight ONCE;
           the class is served while its deficit covers its head frame,
           then the cursor moves on. A class may need several rounds of
           credit for a large frame, so the hunt is bounded generously
           and falls back to the first non-empty class if exceeded. *)
        let advance () =
          t.drr_cursor <- (t.drr_cursor + 1) mod n;
          t.drr_visit_credited <- false
        in
        let max_steps = n * ((16_000 / max 1 quantum) + 2) in
        let rec hunt steps =
          if steps > max_steps then begin
            let found = ref None in
            Array.iter
              (fun c ->
                if !found = None && not (Queue.is_empty c.frames) then
                  found := Some c)
              t.classes;
            !found
          end
          else begin
            let c = t.classes.(t.drr_cursor) in
            if Queue.is_empty c.frames then begin
              c.deficit <- 0;
              advance ();
              hunt (steps + 1)
            end
            else begin
              if not t.drr_visit_credited then begin
                c.deficit <- c.deficit + (quantum * c.config.weight);
                t.drr_visit_credited <- true
              end;
              let _, head = Queue.peek c.frames in
              if c.deficit >= Bytes.length head then Some c
              else begin
                advance ();
                hunt (steps + 1)
              end
            end
          end
        in
        hunt 0
      end

let rec pump t =
  let now = Engine.now t.engine in
  let busy_until = Link.busy_until t.link in
  if busy_until > now then arm_at t busy_until
  else begin
    match next_class t with
    | None -> ()
    | Some c ->
        let enqueued_at, frame = Queue.pop c.frames in
        (match t.policy with
        | Drr _ ->
            c.deficit <- c.deficit - Bytes.length frame;
            if Queue.is_empty c.frames then begin
              (* The class emptied mid-visit: reset and move on. *)
              c.deficit <- 0;
              t.drr_cursor <-
                (t.drr_cursor + 1) mod Array.length t.classes;
              t.drr_visit_credited <- false
            end
        | Fifo | Strict_priority -> ());
        c.sent <- c.sent + 1;
        Stats.add c.delays (now -. enqueued_at);
        Link.send t.link ~size:(Bytes.length frame) frame;
        (* The wire is now busy until this frame finishes; come back. *)
        if backlog t > 0 then arm_at t (Link.busy_until t.link)
  end

and arm_at t time =
  if not t.pump_armed then begin
    t.pump_armed <- true;
    ignore
      (Engine.schedule_at t.engine time (fun () ->
           t.pump_armed <- false;
           pump t))
  end

let send t ~queue_id frame =
  let c = class_for t (Option.value queue_id ~default:0l) in
  if Queue.length c.frames >= c.config.capacity then
    c.dropped <- c.dropped + 1
  else begin
    Queue.push (Engine.now t.engine, frame) c.frames;
    pump t
  end

let queued t ~queue_id = Queue.length (class_for t queue_id).frames
let sent t ~queue_id = (class_for t queue_id).sent
let dropped t ~queue_id = (class_for t queue_id).dropped

let total_dropped t =
  Array.fold_left (fun acc c -> acc + c.dropped) 0 t.classes

let queue_delay_stats t ~queue_id = (class_for t queue_id).delays
