(* Tests for the flow table: priority lookup, replacement, deletion,
   timeouts, eviction, counters. *)

open Sdn_net
open Sdn_openflow
open Sdn_switch

let mac1 = Mac.of_octets 0x02 0 0 0 0 1
let mac2 = Mac.of_octets 0x02 0 0 0 0 2
let ip2 = Ip.make 10 0 0 2

let udp_pkt ~src_port =
  Packet.udp ~src_mac:mac1 ~dst_mac:mac2 ~src_ip:(Ip.make 10 0 0 1) ~dst_ip:ip2
    ~src_port ~dst_port:9 ~payload:(Bytes.of_string "x") ()

let entry_for ?(priority = 1) ?(idle = 0) ?(hard = 0) ~out_port pkt ~now =
  let match_ = Of_match.of_flow_key (Option.get (Packet.flow_key pkt)) in
  Flow_entry.of_flow_mod
    (Of_flow_mod.add ~priority ~idle_timeout:idle ~hard_timeout:hard ~match_
       ~actions:[ Of_action.output out_port ] ())
    ~now

let wildcard_entry ?(priority = 0) ~out_port ~now () =
  Flow_entry.of_flow_mod
    (Of_flow_mod.add ~priority ~match_:Of_match.wildcard_all
       ~actions:[ Of_action.output out_port ] ())
    ~now

let out_port_of entry =
  match entry.Flow_entry.actions with
  | [ Of_action.Output { port; _ } ] -> port
  | _ -> -1

let test_miss_on_empty () =
  let table = Flow_table.create ~capacity:10 () in
  Alcotest.(check bool) "miss" true
    (Flow_table.lookup table ~in_port:1 (udp_pkt ~src_port:1) = None);
  Alcotest.(check int) "lookups" 1 (Flow_table.lookups table);
  Alcotest.(check int) "misses" 1 (Flow_table.misses table)

let test_insert_and_hit () =
  let table = Flow_table.create ~capacity:10 () in
  let pkt = udp_pkt ~src_port:1 in
  ignore (Flow_table.insert table (entry_for ~out_port:2 pkt ~now:0.0));
  (match Flow_table.lookup table ~in_port:1 pkt with
  | Some e -> Alcotest.(check int) "right entry" 2 (out_port_of e)
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check bool) "other flow misses" true
    (Flow_table.lookup table ~in_port:1 (udp_pkt ~src_port:2) = None)

let test_priority_wins () =
  let table = Flow_table.create ~capacity:10 () in
  let pkt = udp_pkt ~src_port:1 in
  ignore (Flow_table.insert table (wildcard_entry ~priority:0 ~out_port:9 ~now:0.0 ()));
  ignore (Flow_table.insert table (entry_for ~priority:5 ~out_port:2 pkt ~now:0.0));
  (match Flow_table.lookup table ~in_port:1 pkt with
  | Some e -> Alcotest.(check int) "high priority" 2 (out_port_of e)
  | None -> Alcotest.fail "expected hit");
  (* A different flow falls through to the wildcard. *)
  match Flow_table.lookup table ~in_port:1 (udp_pkt ~src_port:7) with
  | Some e -> Alcotest.(check int) "wildcard" 9 (out_port_of e)
  | None -> Alcotest.fail "expected wildcard hit"

let test_replace_same_match_priority () =
  let table = Flow_table.create ~capacity:10 () in
  let pkt = udp_pkt ~src_port:1 in
  ignore (Flow_table.insert table (entry_for ~out_port:2 pkt ~now:0.0));
  let result = Flow_table.insert table (entry_for ~out_port:3 pkt ~now:1.0) in
  Alcotest.(check bool) "replaced" true (result = Flow_table.Replaced);
  Alcotest.(check int) "length" 1 (Flow_table.length table);
  match Flow_table.lookup table ~in_port:1 pkt with
  | Some e -> Alcotest.(check int) "new actions" 3 (out_port_of e)
  | None -> Alcotest.fail "expected hit"

let test_capacity_eviction () =
  let table = Flow_table.create ~eviction:true ~capacity:3 () in
  for p = 1 to 3 do
    ignore (Flow_table.insert table (entry_for ~out_port:2 (udp_pkt ~src_port:p) ~now:(float_of_int p)))
  done;
  (* Touch flows 2 and 3 so flow 1 is LRU. *)
  List.iter
    (fun p ->
      match Flow_table.lookup table ~in_port:1 (udp_pkt ~src_port:p) with
      | Some e -> Flow_entry.touch e ~now:10.0 ~bytes:100
      | None -> Alcotest.fail "expected hit")
    [ 2; 3 ];
  let result = Flow_table.insert table (entry_for ~out_port:2 (udp_pkt ~src_port:4) ~now:11.0) in
  (match result with
  | Flow_table.Evicted victim ->
      (* The evicted entry is the untouched one (flow 1). *)
      Alcotest.(check bool) "victim is LRU" true
        (Of_match.matches victim.Flow_entry.match_ ~in_port:1 (udp_pkt ~src_port:1))
  | _ -> Alcotest.fail "expected eviction");
  Alcotest.(check int) "length stays at capacity" 3 (Flow_table.length table);
  Alcotest.(check int) "eviction counted" 1 (Flow_table.evictions table);
  Alcotest.(check bool) "evicted flow now misses" true
    (Flow_table.lookup table ~in_port:1 (udp_pkt ~src_port:1) = None)

let test_table_full_without_eviction () =
  let table = Flow_table.create ~eviction:false ~capacity:1 () in
  ignore (Flow_table.insert table (entry_for ~out_port:2 (udp_pkt ~src_port:1) ~now:0.0));
  let result = Flow_table.insert table (entry_for ~out_port:2 (udp_pkt ~src_port:2) ~now:0.0) in
  Alcotest.(check bool) "rejected" true (result = Flow_table.Table_full)

let test_idle_timeout_expiry () =
  let table = Flow_table.create ~capacity:10 () in
  let pkt = udp_pkt ~src_port:1 in
  ignore (Flow_table.insert table (entry_for ~idle:5 ~out_port:2 pkt ~now:0.0));
  Alcotest.(check int) "not expired yet" 0
    (List.length (Flow_table.expire table ~now:4.9));
  (* A touch at 4 pushes idle expiry to 9. *)
  (match Flow_table.lookup table ~in_port:1 pkt with
  | Some e -> Flow_entry.touch e ~now:4.0 ~bytes:100
  | None -> Alcotest.fail "hit expected");
  Alcotest.(check int) "still alive at 8" 0
    (List.length (Flow_table.expire table ~now:8.0));
  Alcotest.(check int) "expires at 9" 1
    (List.length (Flow_table.expire table ~now:9.0));
  Alcotest.(check int) "expirations counter" 1 (Flow_table.expirations table);
  Alcotest.(check bool) "gone" true (Flow_table.lookup table ~in_port:1 pkt = None)

let test_hard_timeout_expiry () =
  let table = Flow_table.create ~capacity:10 () in
  let pkt = udp_pkt ~src_port:1 in
  ignore (Flow_table.insert table (entry_for ~hard:3 ~out_port:2 pkt ~now:0.0));
  (* Touching does not save a hard-timed-out rule. *)
  (match Flow_table.lookup table ~in_port:1 pkt with
  | Some e -> Flow_entry.touch e ~now:2.9 ~bytes:100
  | None -> Alcotest.fail "hit expected");
  Alcotest.(check int) "hard expiry" 1 (List.length (Flow_table.expire table ~now:3.0))

let test_delete_strict_and_loose () =
  let table = Flow_table.create ~capacity:10 () in
  let p1 = udp_pkt ~src_port:1 and p2 = udp_pkt ~src_port:2 in
  ignore (Flow_table.insert table (entry_for ~priority:1 ~out_port:2 p1 ~now:0.0));
  ignore (Flow_table.insert table (entry_for ~priority:2 ~out_port:2 p2 ~now:0.0));
  (* Strict delete with wrong priority removes nothing. *)
  let m1 = Of_match.of_flow_key (Option.get (Packet.flow_key p1)) in
  Alcotest.(check int) "strict wrong priority" 0
    (Flow_table.delete table ~strict:true ~match_:m1 ~priority:9 ());
  Alcotest.(check int) "strict right priority" 1
    (Flow_table.delete table ~strict:true ~match_:m1 ~priority:1 ());
  (* Loose delete with a wildcard removes the rest. *)
  Alcotest.(check int) "loose wildcard" 1
    (Flow_table.delete table ~strict:false ~match_:Of_match.wildcard_all ~priority:0 ());
  Alcotest.(check int) "empty" 0 (Flow_table.length table)

let test_stats_counters () =
  let table = Flow_table.create ~capacity:10 () in
  let pkt = udp_pkt ~src_port:1 in
  ignore (Flow_table.insert table (entry_for ~out_port:2 pkt ~now:0.0));
  (match Flow_table.lookup table ~in_port:1 pkt with
  | Some e ->
      Flow_entry.touch e ~now:1.0 ~bytes:1000;
      Flow_entry.touch e ~now:2.0 ~bytes:1000
  | None -> Alcotest.fail "hit");
  match Flow_table.to_stats table ~now:3.0 with
  | [ stats ] ->
      Alcotest.(check int64) "packets" 2L stats.Of_stats.packet_count;
      Alcotest.(check int64) "bytes" 2000L stats.Of_stats.byte_count;
      Alcotest.(check int32) "duration" 3l stats.Of_stats.duration_sec
  | _ -> Alcotest.fail "expected one stats entry"

(* ---- Microflow fast path ---- *)

let test_microflow_counters () =
  let table = Flow_table.create ~capacity:10 () in
  let pkt = udp_pkt ~src_port:1 in
  ignore (Flow_table.insert table (entry_for ~out_port:2 pkt ~now:0.0));
  for _ = 1 to 5 do
    ignore (Flow_table.lookup table ~in_port:1 pkt)
  done;
  Alcotest.(check int) "one cold miss" 1 (Flow_table.microflow_misses table);
  Alcotest.(check int) "rest served from cache" 4
    (Flow_table.microflow_hits table);
  Alcotest.(check int) "one cached entry" 1 (Flow_table.microflow_length table)

let test_microflow_invalidated_by_mutations () =
  let table = Flow_table.create ~capacity:10 () in
  let pkt = udp_pkt ~src_port:1 in
  ignore (Flow_table.insert table (entry_for ~out_port:2 pkt ~now:0.0));
  ignore (Flow_table.lookup table ~in_port:1 pkt);
  ignore (Flow_table.lookup table ~in_port:1 pkt);
  Alcotest.(check int) "warm" 1 (Flow_table.microflow_hits table);
  (* Replacing the rule must flush the cache and serve the new actions. *)
  ignore (Flow_table.insert table (entry_for ~out_port:7 pkt ~now:1.0));
  (match Flow_table.lookup table ~in_port:1 pkt with
  | Some e -> Alcotest.(check int) "new actions after insert" 7 (out_port_of e)
  | None -> Alcotest.fail "expected hit");
  (* Deleting it must flush again: a stale hit would forward into a
     void. *)
  let m = Of_match.of_flow_key (Option.get (Packet.flow_key pkt)) in
  ignore (Flow_table.delete table ~strict:false ~match_:m ~priority:0 ());
  Alcotest.(check bool) "miss after delete" true
    (Flow_table.lookup table ~in_port:1 pkt = None);
  Alcotest.(check bool) "flushes counted" true
    (Flow_table.microflow_flushes table >= 2)

let test_microflow_expiry_invalidates () =
  let table = Flow_table.create ~capacity:10 () in
  let pkt = udp_pkt ~src_port:1 in
  ignore (Flow_table.insert table (entry_for ~hard:3 ~out_port:2 pkt ~now:0.0));
  ignore (Flow_table.lookup table ~in_port:1 pkt);
  ignore (Flow_table.lookup table ~in_port:1 pkt);
  ignore (Flow_table.expire table ~now:3.0);
  Alcotest.(check bool) "miss after expiry" true
    (Flow_table.lookup table ~in_port:1 pkt = None)

let test_microflow_negative_cache_invalidated () =
  let table = Flow_table.create ~capacity:10 () in
  let pkt = udp_pkt ~src_port:1 in
  (* Cache a negative result, then install a matching rule: the flush
     on insert must clear the cached miss. *)
  Alcotest.(check bool) "cold miss" true
    (Flow_table.lookup table ~in_port:1 pkt = None);
  Alcotest.(check bool) "cached miss" true
    (Flow_table.lookup table ~in_port:1 pkt = None);
  Alcotest.(check int) "negative result cached" 1
    (Flow_table.microflow_hits table);
  ignore (Flow_table.insert table (entry_for ~out_port:2 pkt ~now:0.0));
  match Flow_table.lookup table ~in_port:1 pkt with
  | Some e -> Alcotest.(check int) "rule found after install" 2 (out_port_of e)
  | None -> Alcotest.fail "stale negative cache entry"

let test_microflow_keyed_on_in_port () =
  let table = Flow_table.create ~capacity:10 () in
  let pkt = udp_pkt ~src_port:1 in
  (* A rule that pins the ingress port: the same frame on another port
     must not reuse the cached result. *)
  let key_match = Of_match.of_flow_key (Option.get (Packet.flow_key pkt)) in
  let match_ = { key_match with Of_match.in_port = Some 1 } in
  ignore
    (Flow_table.insert table
       (Flow_entry.of_flow_mod
          (Of_flow_mod.add ~priority:1 ~match_
             ~actions:[ Of_action.output 2 ] ())
          ~now:0.0));
  Alcotest.(check bool) "hits on port 1" true
    (Flow_table.lookup table ~in_port:1 pkt <> None);
  Alcotest.(check bool) "misses on port 3" true
    (Flow_table.lookup table ~in_port:3 pkt = None)

let test_microflow_disabled () =
  let table = Flow_table.create ~microflow:false ~capacity:10 () in
  let pkt = udp_pkt ~src_port:1 in
  ignore (Flow_table.insert table (entry_for ~out_port:2 pkt ~now:0.0));
  for _ = 1 to 3 do
    Alcotest.(check bool) "still hits" true
      (Flow_table.lookup table ~in_port:1 pkt <> None)
  done;
  Alcotest.(check int) "no cache hits" 0 (Flow_table.microflow_hits table);
  Alcotest.(check int) "no cache misses" 0 (Flow_table.microflow_misses table)

let test_microflow_audit_clean () =
  let check = Sdn_check.Check.create () in
  let table = Flow_table.create ~check ~capacity:10 () in
  let pkt = udp_pkt ~src_port:1 in
  ignore (Flow_table.insert table (entry_for ~out_port:2 pkt ~now:0.0));
  for _ = 1 to 10 do
    ignore (Flow_table.lookup table ~in_port:1 pkt)
  done;
  Alcotest.(check int) "hits audited clean" 0
    (Sdn_check.Check.violation_count check);
  Alcotest.(check bool) "audits recorded" true
    (Sdn_check.Check.events_seen check > 0)

(* The fast path must be semantically invisible: a cached table and an
   uncached one driven through an identical randomized trace of
   inserts, deletes, expiries and lookups answer every lookup the same
   way. *)
let prop_microflow_equivalence =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (6, map (fun p -> `Lookup p) (int_range 1 40));
          (3, map2 (fun p prio -> `Insert (p, prio)) (int_range 1 40)
                (int_range 1 3));
          (1, map (fun p -> `Delete p) (int_range 1 40));
          (1, map (fun t -> `Expire t) (float_bound_exclusive 100.0));
        ])
  in
  QCheck.Test.make ~name:"microflow-cached table behaves like uncached"
    ~count:120
    QCheck.(make ~print:(fun l -> string_of_int (List.length l))
       Gen.(list_size (int_range 1 120) op_gen))
    (fun ops ->
      let cached = Flow_table.create ~capacity:16 () in
      let plain = Flow_table.create ~microflow:false ~capacity:16 () in
      let now = ref 0.0 in
      List.for_all
        (fun op ->
          now := !now +. 0.5;
          match op with
          | `Insert (p, prio) ->
              let entry () =
                entry_for ~priority:prio ~idle:30 ~out_port:p
                  (udp_pkt ~src_port:p) ~now:!now
              in
              ignore (Flow_table.insert cached (entry ()));
              ignore (Flow_table.insert plain (entry ()));
              true
          | `Delete p ->
              let m =
                Of_match.of_flow_key
                  (Option.get (Packet.flow_key (udp_pkt ~src_port:p)))
              in
              let a =
                Flow_table.delete cached ~strict:false ~match_:m ~priority:0 ()
              in
              let b =
                Flow_table.delete plain ~strict:false ~match_:m ~priority:0 ()
              in
              a = b
          | `Expire t ->
              List.length (Flow_table.expire cached ~now:t)
              = List.length (Flow_table.expire plain ~now:t)
          | `Lookup p ->
              let pkt = udp_pkt ~src_port:p in
              let a = Flow_table.lookup cached ~in_port:1 pkt in
              let b = Flow_table.lookup plain ~in_port:1 pkt in
              let c = Flow_table.lookup_uncached cached ~in_port:1 pkt in
              (match (a, b) with
              | None, None -> c = None
              | Some ea, Some eb ->
                  out_port_of ea = out_port_of eb
                  && ea.Flow_entry.priority = eb.Flow_entry.priority
                  && (match c with Some ec -> ec == ea | None -> false)
              | Some _, None | None, Some _ -> false))
        ops)

let prop_inserted_flow_is_found =
  QCheck.Test.make ~name:"every inserted 5-tuple rule is found" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (int_range 1 60000))
    (fun ports ->
      let ports = List.sort_uniq compare ports in
      let table = Flow_table.create ~capacity:100 () in
      List.iter
        (fun p -> ignore (Flow_table.insert table (entry_for ~out_port:2 (udp_pkt ~src_port:p) ~now:0.0)))
        ports;
      List.for_all
        (fun p -> Flow_table.lookup table ~in_port:1 (udp_pkt ~src_port:p) <> None)
        ports)

let suite =
  [
    Alcotest.test_case "miss on empty table" `Quick test_miss_on_empty;
    Alcotest.test_case "insert and hit" `Quick test_insert_and_hit;
    Alcotest.test_case "priority wins" `Quick test_priority_wins;
    Alcotest.test_case "replace on equal match+priority" `Quick
      test_replace_same_match_priority;
    Alcotest.test_case "LRU eviction at capacity" `Quick test_capacity_eviction;
    Alcotest.test_case "table full without eviction" `Quick
      test_table_full_without_eviction;
    Alcotest.test_case "idle timeout" `Quick test_idle_timeout_expiry;
    Alcotest.test_case "hard timeout" `Quick test_hard_timeout_expiry;
    Alcotest.test_case "strict and loose delete" `Quick test_delete_strict_and_loose;
    Alcotest.test_case "per-rule counters" `Quick test_stats_counters;
    Alcotest.test_case "microflow hit/miss counters" `Quick
      test_microflow_counters;
    Alcotest.test_case "microflow invalidated by mutations" `Quick
      test_microflow_invalidated_by_mutations;
    Alcotest.test_case "microflow invalidated by expiry" `Quick
      test_microflow_expiry_invalidates;
    Alcotest.test_case "negative cache entry invalidated" `Quick
      test_microflow_negative_cache_invalidated;
    Alcotest.test_case "microflow keyed on ingress port" `Quick
      test_microflow_keyed_on_in_port;
    Alcotest.test_case "microflow disabled" `Quick test_microflow_disabled;
    Alcotest.test_case "checker audits cache hits clean" `Quick
      test_microflow_audit_clean;
    QCheck_alcotest.to_alcotest prop_microflow_equivalence;
    QCheck_alcotest.to_alcotest prop_inserted_flow_is_found;
  ]
