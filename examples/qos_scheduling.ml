(* The paper's Section VII future work, built: egress scheduling
   combined with the ingress buffer mechanism.

   Run with:  dune exec examples/qos_scheduling.exe

   A bulk UDP transfer saturates the switch's 100 Mbps egress port
   while a low-rate interactive flow (small frames every 2 ms) shares
   it. Without scheduling (FIFO), interactive frames queue behind the
   bulk backlog; with strict priority or weighted DRR, the interactive
   class keeps millisecond-scale egress delays. The controller assigns
   classes by installing Enqueue actions (queue 1 = interactive) chosen
   by destination port. *)

open Sdn_sim
open Sdn_core
open Sdn_measure
open Sdn_traffic
module Egress_queue = Sdn_switch.Egress_queue

let interactive_port = 5001

let queues =
  [
    { Egress_queue.default_queue with Egress_queue.queue_id = 0l; priority = 0; weight = 1 };
    { Egress_queue.default_queue with Egress_queue.queue_id = 1l; priority = 10; weight = 8 };
  ]

let interactive_addressing =
  {
    Addressing.default with
    Addressing.src_ip_base = Sdn_net.Ip.make 10 9 0 0;
    src_port_base = 40000;
    dst_port = interactive_port;
  }

let shared_fifo_queue =
  (* A single 2048-frame class: every flow shares it, arrival order. *)
  [ { Egress_queue.default_queue with Egress_queue.capacity = 2048 } ]

(* [interactive_queue] is where the controller steers the interactive
   class for this leg: queue 1 when the port carries two queues, queue
   0 on the shared-FIFO leg (a controller must not install Enqueue
   actions naming queues the port does not carry — the switch now
   counts those as misroutes and drops them). *)
let run policy_name ~policy ~queues ~interactive_queue =
  let classify (ctx : Sdn_controller.App.context) =
    match ctx.Sdn_controller.App.flow_key with
    | Some key when key.Sdn_net.Flow_key.dst_port = interactive_port ->
        interactive_queue
    | Some _ | None -> 0l
  in
  let config =
    {
      Config.default with
      Config.mechanism = Config.Flow_granularity;
      rate_mbps = 97.0;
      egress_bandwidth_bps = Some 50e6;
      qos = Some { Config.classify; policy; queues };
    }
  in
  let scenario = Scenario.build config in
  let engine = scenario.Scenario.engine in
  let rng = scenario.Scenario.traffic_rng in
  (* Bulk: 2000 full-size frames at 97 Mbps through port 2. *)
  let bulk =
    Patterns.udp_burst ~rng ~start:0.05 ~n_packets:2000 ~rate_mbps:97.0
      ~frame_size:1000 ()
  in
  (* Interactive: one flow, a 200-byte frame every 2 ms (0.8 Mbps). *)
  let interactive =
    Patterns.udp_burst ~rng ~addressing:interactive_addressing ~start:0.05
      ~n_packets:80 ~rate_mbps:0.8 ~frame_size:200 ()
  in
  Pktgen.schedule engine
    ~inject:(fun ~in_port frame -> Scenario.inject scenario ~in_port frame)
    (bulk @ interactive);
  Scenario.run_until_quiet ~min_time:0.3 scenario;
  let scheduler =
    Option.get (Sdn_switch.Switch.port_scheduler scenario.Scenario.switch ~port:2)
  in
  let interactive_delay =
    Stats.mean
      (Egress_queue.queue_delay_stats scheduler ~queue_id:interactive_queue)
  in
  let bulk_delay =
    Stats.mean (Egress_queue.queue_delay_stats scheduler ~queue_id:0l)
  in
  let drops = Egress_queue.total_dropped scheduler in
  ( policy_name,
    scenario.Scenario.host2_received,
    interactive_delay,
    bulk_delay,
    drops )

let () =
  Printf.printf
    "A 97 Mbps bulk transfer and a 0.8 Mbps interactive flow share a\n\
     50 Mbps egress uplink (flow-granularity ingress buffer on), so the\n\
     port runs at 2x oversubscription while the bulk burst lasts.\n\n";
  let results =
    [
      run "FIFO (one shared queue)" ~policy:Egress_queue.Fifo
        ~queues:shared_fifo_queue ~interactive_queue:0l;
      run "strict priority" ~policy:Egress_queue.Strict_priority ~queues
        ~interactive_queue:1l;
      run "DRR (interactive weight 8)"
        ~policy:(Egress_queue.Drr { quantum = 500 })
        ~queues ~interactive_queue:1l;
    ]
  in
  let rows =
    List.map
      (fun (name, delivered, interactive, bulk, drops) ->
        [
          name;
          string_of_int delivered;
          Report.fmt_ms interactive;
          Report.fmt_ms bulk;
          string_of_int drops;
        ])
      results
  in
  Report.print_table
    ~header:
      [
        "egress scheduling"; "frames delivered"; "interactive egress wait (ms)";
        "bulk egress wait (ms)"; "scheduler drops";
      ]
    ~rows;
  Printf.printf
    "\nWith a scheduler in front of the port, the interactive class no\n\
     longer waits behind the bulk backlog — the QoS guarantee the paper\n\
     proposes to combine with the ingress buffer mechanism.\n"
