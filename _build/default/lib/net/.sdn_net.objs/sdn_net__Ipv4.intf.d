lib/net/ipv4.mli: Bytes Format Ip
