(* Fixture: clean — each would-be finding carries an explicit
   per-site suppression. *)

(* lint: allow wall-clock *)
let now () = Unix.gettimeofday ()

let unreachable () = assert false (* lint: allow partial-exit *)
