lib/openflow/of_stats.ml: Bytes Format Int32 Int64 List Of_action Of_match Of_wire Printf String
