(** Vendor (experimenter) extension carrying the paper's
    flow-granularity buffer protocol.

    The mechanism itself mostly reuses standard messages — the shared
    [buffer_id] rides in ordinary [PACKET_IN] / [PACKET_OUT] — but the
    paper notes the OpenFlow protocol "needs to be extended" for the
    switch-side behaviour. This module defines that extension as a
    proper OF 1.0 [VENDOR] message family:

    - the controller enables or disables flow-granularity buffering on
      a switch and configures the re-request policy of Algorithm 1
      (line 12): base timeout, exponential-backoff multiplier, delay
      cap and resend budget;
    - the controller can query buffer-pool statistics, which the
      monitoring example uses to plot buffer utilization live. *)

type stats = {
  units_in_use : int;
  units_total : int;
  flows_buffered : int;  (** flows currently holding a buffer unit *)
  packets_buffered : int;  (** packets across all chained units *)
  resends : int;  (** timeout-triggered repeated PACKET_INs *)
}

type backoff = {
  timeout : float;  (** base re-request timeout, seconds *)
  multiplier : float;  (** delay growth per unanswered request, >= 1 *)
  cap : float;  (** upper bound on the re-request delay, seconds *)
  max_resends : int;  (** unanswered requests before abandoning *)
}
(** The re-request policy. Durations are encoded as whole milliseconds
    and the multiplier as thousandths, so sub-millisecond precision is
    rounded on the wire. *)

val default_backoff : timeout:float -> backoff
(** The paper's fixed-period policy: [multiplier = 1], [cap = timeout],
    [max_resends = 3]. *)

type t =
  | Flow_buffer_enable of backoff
  | Flow_buffer_disable
  | Flow_buffer_stats_request
  | Flow_buffer_stats_reply of stats

val vendor_id : int32
(** The experimenter id this reproduction registers for itself. *)

val body_size : t -> int
val write_body : t -> Bytes.t -> int -> unit
val read_body : Bytes.t -> int -> len:int -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
