test/test_link.ml: Alcotest Engine Link List Sdn_sim
