(* End-to-end integration tests: whole-platform runs through
   [Sdn_core], checking conservation laws, orderings the paper
   establishes, and reproducibility. *)

open Sdn_core

let run ?(workload = Config.Exp_a { n_flows = 200 }) ?(seed = 1) ~mechanism
    ~buffer ~rate () =
  Experiment.run
    {
      Config.default with
      Config.mechanism;
      buffer_capacity = buffer;
      rate_mbps = rate;
      seed;
      workload;
    }

let test_all_packets_delivered () =
  List.iter
    (fun (mechanism, buffer) ->
      let r = run ~mechanism ~buffer ~rate:30.0 () in
      Alcotest.(check int) "all in" 200 r.Experiment.packets_in;
      Alcotest.(check int) "all out" 200 r.Experiment.packets_out;
      Alcotest.(check int) "none dropped" 0 r.Experiment.packets_dropped;
      Alcotest.(check int) "all flows complete" 200 r.Experiment.flows_completed)
    [ (Config.No_buffer, 0); (Config.Packet_granularity, 256);
      (Config.Flow_granularity, 256) ]

let test_one_pkt_in_per_miss_exp_a () =
  (* Single-packet flows: every packet misses exactly once. *)
  let r = run ~mechanism:Config.Packet_granularity ~buffer:256 ~rate:30.0 () in
  Alcotest.(check int) "one request per flow" 200 r.Experiment.pkt_ins;
  (* Responses: one flow_mod + one packet_out per request (plus the
     3-message handshake on each direction's count). *)
  Alcotest.(check bool) "down is about twice up" true
    (abs (r.Experiment.ctrl_msgs_down - (2 * r.Experiment.pkt_ins)) < 10)

let test_buffered_load_much_lower () =
  let nb = run ~mechanism:Config.No_buffer ~buffer:0 ~rate:50.0 () in
  let b = run ~mechanism:Config.Packet_granularity ~buffer:256 ~rate:50.0 () in
  Alcotest.(check bool) "up-load reduced by >70%" true
    (b.Experiment.ctrl_load_up_mbps < 0.3 *. nb.Experiment.ctrl_load_up_mbps);
  Alcotest.(check bool) "down-load reduced" true
    (b.Experiment.ctrl_load_down_mbps < 0.4 *. nb.Experiment.ctrl_load_down_mbps);
  Alcotest.(check bool) "controller cheaper" true
    (b.Experiment.controller_cpu_pct < nb.Experiment.controller_cpu_pct)

let test_no_buffer_uses_no_units () =
  let r = run ~mechanism:Config.No_buffer ~buffer:0 ~rate:50.0 () in
  Alcotest.(check int) "no units" 0 r.Experiment.buffer_max_in_use;
  Alcotest.(check int) "every miss is a full-packet request" 200
    r.Experiment.full_packet_fallbacks

let test_small_buffer_exhausts_at_high_rate () =
  let b16 =
    run
      ~workload:(Config.Exp_a { n_flows = 500 })
      ~mechanism:Config.Packet_granularity ~buffer:16 ~rate:60.0 ()
  in
  Alcotest.(check bool) "hits the ceiling" true
    (b16.Experiment.buffer_max_in_use = 16);
  Alcotest.(check bool) "falls back for the excess" true
    (b16.Experiment.full_packet_fallbacks > 0);
  (* At a gentle rate the same buffer never exhausts. *)
  let slow =
    run
      ~workload:(Config.Exp_a { n_flows = 500 })
      ~mechanism:Config.Packet_granularity ~buffer:16 ~rate:10.0 ()
  in
  Alcotest.(check int) "no fallback at 10 Mbps" 0
    slow.Experiment.full_packet_fallbacks

let test_flow_granularity_fewer_requests_exp_b () =
  let workload = Config.Exp_b { n_flows = 20; packets_per_flow = 20; concurrent = 5 } in
  let pkt = run ~workload ~mechanism:Config.Packet_granularity ~buffer:256 ~rate:95.0 () in
  let flow = run ~workload ~mechanism:Config.Flow_granularity ~buffer:256 ~rate:95.0 () in
  Alcotest.(check bool)
    (Printf.sprintf "fewer requests (%d vs %d)" flow.Experiment.pkt_ins
       pkt.Experiment.pkt_ins)
    true
    (flow.Experiment.pkt_ins < pkt.Experiment.pkt_ins);
  Alcotest.(check bool) "at least one request per flow" true
    (flow.Experiment.pkt_ins >= 20);
  Alcotest.(check bool) "lower control load" true
    (flow.Experiment.ctrl_load_up_mbps < pkt.Experiment.ctrl_load_up_mbps);
  Alcotest.(check bool) "fewer buffer units" true
    (flow.Experiment.buffer_max_in_use <= pkt.Experiment.buffer_max_in_use);
  Alcotest.(check int) "both deliver everything" pkt.Experiment.packets_out
    flow.Experiment.packets_out

let test_reproducibility () =
  let a = run ~mechanism:Config.Packet_granularity ~buffer:256 ~rate:40.0 ~seed:9 () in
  let b = run ~mechanism:Config.Packet_granularity ~buffer:256 ~rate:40.0 ~seed:9 () in
  Alcotest.(check (float 0.0)) "identical load" a.Experiment.ctrl_load_up_mbps
    b.Experiment.ctrl_load_up_mbps;
  Alcotest.(check (float 0.0)) "identical setup delay"
    a.Experiment.setup_delay.Experiment.mean b.Experiment.setup_delay.Experiment.mean;
  let c = run ~mechanism:Config.Packet_granularity ~buffer:256 ~rate:40.0 ~seed:10 () in
  Alcotest.(check bool) "different seed differs" true
    (a.Experiment.setup_delay.Experiment.mean
     <> c.Experiment.setup_delay.Experiment.mean)

let test_delays_positive_and_consistent () =
  let r = run ~mechanism:Config.Packet_granularity ~buffer:256 ~rate:30.0 () in
  let s = r.Experiment.setup_delay and c = r.Experiment.controller_delay in
  Alcotest.(check bool) "setup positive" true (s.Experiment.mean > 0.0);
  Alcotest.(check bool) "controller positive" true (c.Experiment.mean > 0.0);
  Alcotest.(check bool) "controller < setup" true
    (c.Experiment.mean < s.Experiment.mean);
  Alcotest.(check bool) "switch delay ~ setup - controller" true
    (abs_float
       (r.Experiment.switch_delay.Experiment.mean
       -. (s.Experiment.mean -. c.Experiment.mean))
     < 0.3e-3);
  Alcotest.(check int) "every flow measured" 200 s.Experiment.count

(* Releasing via FLOW_MOD (buffer id inside the install message) should
   halve the number of downstream messages — the ablation of the
   paper's message-pair design. *)
let test_release_strategy_ablation () =
  let base =
    {
      Config.default with
      Config.workload = Config.Exp_a { n_flows = 200 };
      rate_mbps = 30.0;
    }
  in
  let pair = Experiment.run base in
  let fmr =
    Experiment.run { base with Config.release_strategy = `Flow_mod_release }
  in
  Alcotest.(check bool)
    (Printf.sprintf "fewer down msgs (%d vs %d)" fmr.Experiment.ctrl_msgs_down
       pair.Experiment.ctrl_msgs_down)
    true
    (fmr.Experiment.ctrl_msgs_down < pair.Experiment.ctrl_msgs_down);
  Alcotest.(check int) "same deliveries" pair.Experiment.packets_out
    fmr.Experiment.packets_out

let test_udp_burst_single_request_flow_granularity () =
  let workload = Config.Udp_burst { n_packets = 100 } in
  let r = run ~workload ~mechanism:Config.Flow_granularity ~buffer:256 ~rate:95.0 () in
  (* One sudden UDP flow: a handful of requests (first + re-misses in
     the install window), far fewer than the 100 of packet
     granularity. *)
  let pkt = run ~workload ~mechanism:Config.Packet_granularity ~buffer:256 ~rate:95.0 () in
  Alcotest.(check bool)
    (Printf.sprintf "burst requests: flow %d vs packet %d" r.Experiment.pkt_ins
       pkt.Experiment.pkt_ins)
    true
    (r.Experiment.pkt_ins * 4 < pkt.Experiment.pkt_ins);
  Alcotest.(check int) "all delivered" 100 r.Experiment.packets_out

let test_calibration_sanity () =
  List.iter
    (fun (what, ok) -> Alcotest.(check bool) what true ok)
    (Calibration.sanity ())

let suite =
  [
    Alcotest.test_case "all packets delivered under every mechanism" `Quick
      test_all_packets_delivered;
    Alcotest.test_case "one request per single-packet flow" `Quick
      test_one_pkt_in_per_miss_exp_a;
    Alcotest.test_case "buffering slashes control load" `Quick
      test_buffered_load_much_lower;
    Alcotest.test_case "no-buffer uses no units" `Quick test_no_buffer_uses_no_units;
    Alcotest.test_case "buffer-16 exhausts at high rate" `Quick
      test_small_buffer_exhausts_at_high_rate;
    Alcotest.test_case "flow granularity sends fewer requests (Exp-B)" `Quick
      test_flow_granularity_fewer_requests_exp_b;
    Alcotest.test_case "bit-for-bit reproducibility" `Quick test_reproducibility;
    Alcotest.test_case "delay metrics are consistent" `Quick
      test_delays_positive_and_consistent;
    Alcotest.test_case "release-strategy ablation" `Quick
      test_release_strategy_ablation;
    Alcotest.test_case "UDP burst favours flow granularity" `Quick
      test_udp_burst_single_request_flow_granularity;
    Alcotest.test_case "calibration sanity conditions" `Quick
      test_calibration_sanity;
  ]
