(** Per-flow and per-request delay tracking — the paper's four delay
    metrics (Section III.B):

    - {b flow setup delay}: first packet of a flow entering the switch
      to that packet leaving the switch;
    - {b controller delay}: a [PACKET_IN] leaving the switch to the
      first matching [FLOW_MOD]/[PACKET_OUT] arriving back (paired by
      transaction id, which the controller echoes);
    - {b switch delay}: flow setup delay minus the flow's controller
      delay;
    - {b flow forwarding delay}: first packet entering to the {e last}
      packet of the flow leaving.

    Data-plane packets are attributed to flows via the pktgen
    {!Sdn_traffic.Tag} in their payload; [PACKET_IN]s are attributed
    via the tag visible in their (possibly truncated) data. *)

open Sdn_sim

type t

val create : unit -> t

(** {2 Observation hooks} *)

val on_switch_ingress : t -> time:float -> Bytes.t -> unit
(** A data frame entering the switch. *)

val on_switch_egress : t -> time:float -> Bytes.t -> unit
(** A data frame leaving the switch. *)

val on_to_controller : t -> time:float -> Bytes.t -> unit
(** An OpenFlow message leaving the switch for the controller. *)

val on_to_switch : t -> time:float -> Bytes.t -> unit
(** An OpenFlow message arriving at the switch from the controller. *)

(** {2 Results} *)

val flow_setup_delays : t -> Stats.t
val controller_delays : t -> Stats.t
val switch_delays : t -> Stats.t
val flow_forwarding_delays : t -> Stats.t
(** Only flows whose every packet egressed contribute a forwarding
    delay. *)

val flows_started : t -> int
val flows_set_up : t -> int
(** Flows whose first packet made it out. *)

val flows_completed : t -> int
val packets_in : t -> int
val packets_out : t -> int
val unmatched_responses : t -> int
(** Control responses whose transaction id paired with no outstanding
    request (e.g. handshake traffic). *)

val last_egress_time : t -> float
(** Time the last observed data frame left the switch; [0.] if none. *)
