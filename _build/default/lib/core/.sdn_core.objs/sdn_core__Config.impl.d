lib/core/config.ml: Calibration Printf Sdn_controller Sdn_switch
