lib/openflow/of_flow_mod.mli: Bytes Format Of_action Of_match
