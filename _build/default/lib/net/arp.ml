type oper = Request | Reply

type t = {
  oper : oper;
  sender_mac : Mac.t;
  sender_ip : Ip.t;
  target_mac : Mac.t;
  target_ip : Ip.t;
}

let size = 28

let request ~sender_mac ~sender_ip ~target_ip =
  { oper = Request; sender_mac; sender_ip; target_mac = Mac.zero; target_ip }

let reply req ~responder_mac =
  {
    oper = Reply;
    sender_mac = responder_mac;
    sender_ip = req.target_ip;
    target_mac = req.sender_mac;
    target_ip = req.sender_ip;
  }

let oper_to_int = function Request -> 1 | Reply -> 2

let write t buf off =
  Bytes.set_uint16_be buf off 1 (* htype: Ethernet *);
  Bytes.set_uint16_be buf (off + 2) Ethernet.ethertype_ipv4;
  Bytes.set_uint8 buf (off + 4) 6 (* hlen *);
  Bytes.set_uint8 buf (off + 5) 4 (* plen *);
  Bytes.set_uint16_be buf (off + 6) (oper_to_int t.oper);
  Mac.write t.sender_mac buf (off + 8);
  Ip.write t.sender_ip buf (off + 14);
  Mac.write t.target_mac buf (off + 18);
  Ip.write t.target_ip buf (off + 24)

let read buf off =
  if off + size > Bytes.length buf then Error "Arp.read: truncated packet"
  else if Bytes.get_uint16_be buf off <> 1 then Error "Arp.read: not Ethernet"
  else if Bytes.get_uint16_be buf (off + 2) <> Ethernet.ethertype_ipv4 then
    Error "Arp.read: not IPv4"
  else if Bytes.get_uint8 buf (off + 4) <> 6 || Bytes.get_uint8 buf (off + 5) <> 4
  then Error "Arp.read: bad address lengths"
  else begin
    match Bytes.get_uint16_be buf (off + 6) with
    | 1 | 2 as op ->
        Ok
          {
            oper = (if op = 1 then Request else Reply);
            sender_mac = Mac.read buf (off + 8);
            sender_ip = Ip.read buf (off + 14);
            target_mac = Mac.read buf (off + 18);
            target_ip = Ip.read buf (off + 24);
          }
    | op -> Error (Printf.sprintf "Arp.read: bad operation %d" op)
  end

let equal a b =
  a.oper = b.oper
  && Mac.equal a.sender_mac b.sender_mac
  && Ip.equal a.sender_ip b.sender_ip
  && Mac.equal a.target_mac b.target_mac
  && Ip.equal a.target_ip b.target_ip

let pp fmt t =
  let op = match t.oper with Request -> "who-has" | Reply -> "is-at" in
  Format.fprintf fmt "arp{%s %a tell %a}" op Ip.pp t.target_ip Ip.pp t.sender_ip
