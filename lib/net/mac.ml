type t = int64 (* low 48 bits *)

let mask = 0xFFFF_FFFF_FFFFL

let of_int64 x = Int64.logand x mask

let to_int64 t = t

let of_octets a b c d e f =
  let check o =
    if o < 0 || o > 255 then invalid_arg "Mac.of_octets: octet out of range"
  in
  check a; check b; check c; check d; check e; check f;
  let ( << ) x n = Int64.shift_left (Int64.of_int x) n in
  List.fold_left Int64.logor 0L
    [ a << 40; b << 32; c << 24; d << 16; e << 8; f << 0 ]

let octet t i =
  (* i = 0 is the most significant octet. *)
  Int64.to_int (Int64.logand (Int64.shift_right_logical t (8 * (5 - i))) 0xFFL)

let to_string t =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" (octet t 0) (octet t 1)
    (octet t 2) (octet t 3) (octet t 4) (octet t 5)

let of_string s =
  let octet part =
    match int_of_string_opt ("0x" ^ part) with
    | Some o when o >= 0 && o <= 255 -> Ok o
    | Some _ ->
        Error (Printf.sprintf "Mac.of_string: octet out of range in %S" s)
    | None -> Error (Printf.sprintf "Mac.of_string: bad octet in %S" s)
  in
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] -> (
      match (octet a, octet b, octet c, octet d, octet e, octet f) with
      | Ok a, Ok b, Ok c, Ok d, Ok e, Ok f -> Ok (of_octets a b c d e f)
      | Error e, _, _, _, _, _
      | _, Error e, _, _, _, _
      | _, _, Error e, _, _, _
      | _, _, _, Error e, _, _
      | _, _, _, _, Error e, _
      | _, _, _, _, _, Error e ->
          Error e)
  | _ -> Error (Printf.sprintf "Mac.of_string: expected 6 octets in %S" s)

let of_string_exn s =
  match of_string s with Ok t -> t | Error msg -> invalid_arg msg

let broadcast = mask

let zero = 0L

let is_broadcast t = Int64.equal t broadcast

let compare = Int64.compare
let equal = Int64.equal
let hash t = Int64.to_int t land max_int

let pp fmt t = Format.pp_print_string fmt (to_string t)

let write t buf off =
  for i = 0 to 5 do
    Bytes.set_uint8 buf (off + i) (octet t i)
  done

let read buf off =
  let get i = Bytes.get_uint8 buf (off + i) in
  of_octets (get 0) (get 1) (get 2) (get 3) (get 4) (get 5)
