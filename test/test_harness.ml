(* Tests for the experiment harness layers: sweeps, figure data, CSV
   export, ablation smoke, and the reply-xid protocol contract. *)

open Sdn_core

let tiny_rates = [ 20.0; 60.0 ]

let test_sweep_structure () =
  let series =
    Sweep.run ~label:"t" ~rates:tiny_rates ~reps:2 (fun ~rate_mbps ~seed ->
        {
          (Config.exp_a ~mechanism:Config.Packet_granularity ~buffer_capacity:256
             ~rate_mbps ~seed)
          with
          Config.workload = Config.Exp_a { n_flows = 50 };
        })
  in
  Alcotest.(check string) "label" "t" series.Sweep.label;
  Alcotest.(check int) "points" 2 (List.length series.Sweep.points);
  List.iter2
    (fun (p : Sweep.point) rate ->
      Alcotest.(check (float 0.0)) "rate" rate p.Sweep.rate_mbps;
      Alcotest.(check int) "reps" 2 (List.length p.Sweep.results))
    series.Sweep.points tiny_rates

let test_sweep_seeds_differ_across_reps () =
  let seen = ref [] in
  let _ =
    Sweep.run ~label:"s" ~rates:[ 10.0 ] ~reps:3 (fun ~rate_mbps ~seed ->
        seen := seed :: !seen;
        {
          (Config.exp_a ~mechanism:Config.Packet_granularity ~buffer_capacity:256
             ~rate_mbps ~seed)
          with
          Config.workload = Config.Exp_a { n_flows = 10 };
        })
  in
  Alcotest.(check int) "three distinct seeds" 3
    (List.length (List.sort_uniq compare !seen))

let test_sweep_seed_derivation () =
  (* Golden values: the grid seeds are release-stable, because recorded
     figures are only reproducible if every (rate, rep) cell keeps its
     seed across refactors of the sweep executor. *)
  Alcotest.(check int) "first cell" 50_001
    (Sweep.seed_for ~rate_mbps:5.0 ~rep:0);
  Alcotest.(check int) "second rep" 50_002 (Sweep.seed_for ~rate_mbps:5.0 ~rep:1);
  Alcotest.(check int) "last cell" 1_000_020
    (Sweep.seed_for ~rate_mbps:100.0 ~rep:19);
  let grid =
    List.concat_map
      (fun rate_mbps -> List.init 20 (fun rep -> Sweep.seed_for ~rate_mbps ~rep))
      Sweep.default_rates
  in
  Alcotest.(check int) "full default grid" 400 (List.length grid);
  Alcotest.(check int) "all 400 seeds distinct" 400
    (List.length (List.sort_uniq Int.compare grid));
  Alcotest.(check int) "golden grid checksum" 210_004_200
    (List.fold_left ( + ) 0 grid)

let test_sd_guard_single_rep () =
  (* One repetition has no spread: the sample SD must be exactly 0, not
     nan (n - 1 = 0 in the denominator). *)
  let series =
    Sweep.run ~label:"sd1" ~rates:[ 30.0 ] ~reps:1 (fun ~rate_mbps ~seed ->
        {
          (Config.exp_a ~mechanism:Config.Packet_granularity ~buffer_capacity:256
             ~rate_mbps ~seed)
          with
          Config.workload = Config.Exp_a { n_flows = 10 };
        })
  in
  let metric (r : Experiment.result) = r.Experiment.ctrl_load_up_mbps in
  let p = List.hd series.Sweep.points in
  Alcotest.(check (float 0.0)) "point_sd at n=1" 0.0 (Sweep.point_sd p metric);
  Alcotest.(check (float 0.0)) "series_sd at n=1" 0.0
    (Sweep.series_sd series metric);
  Alcotest.(check bool) "mean still finite" true
    (Float.is_finite (Sweep.point_mean p metric))

let test_sweep_aggregates () =
  let series =
    Sweep.run ~label:"agg" ~rates:tiny_rates ~reps:2 (fun ~rate_mbps ~seed ->
        {
          (Config.exp_a ~mechanism:Config.Packet_granularity ~buffer_capacity:256
             ~rate_mbps ~seed)
          with
          Config.workload = Config.Exp_a { n_flows = 50 };
        })
  in
  let metric (r : Experiment.result) = r.Experiment.ctrl_load_up_mbps in
  let p = List.hd series.Sweep.points in
  Alcotest.(check bool) "point mean positive" true (Sweep.point_mean p metric > 0.0);
  Alcotest.(check bool) "series mean between point means" true
    (let m = Sweep.series_mean series metric in
     let means =
       List.map (fun p -> Sweep.point_mean p metric) series.Sweep.points
     in
     m >= List.fold_left min infinity means -. 1e-9
     && m <= List.fold_left max 0.0 means +. 1e-9);
  Alcotest.(check (float 1e-9)) "reduction pct" 75.0
    (Sweep.reduction_pct ~baseline:4.0 ~improved:1.0)

let test_csv_export_writes_all_figures () =
  let dir = Filename.temp_file "sdnbuf" "" in
  Sys.remove dir;
  let rates = [ 30.0 ] and reps = 1 in
  let a = Figures.run_exp_a ~rates ~reps () in
  let b = Figures.run_exp_b ~rates ~reps () in
  Figures.export_csv ~dir a b;
  let files = Sys.readdir dir in
  Alcotest.(check int) "16 csv files" 16 (Array.length files);
  (* Spot-check one file's shape. *)
  let ic = open_in (Filename.concat dir "fig2a.csv") in
  let header = input_line ic in
  let row = input_line ic in
  close_in ic;
  Alcotest.(check bool) "header names series" true
    (String.length header > 0
    && String.split_on_char ',' header |> List.length = 7);
  Alcotest.(check string) "row starts with the rate" "30"
    (List.hd (String.split_on_char ',' row));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) files;
  Sys.rmdir dir

let test_figures_data_invariants () =
  let rates = [ 40.0 ] and reps = 2 in
  let a = Figures.run_exp_a ~rates ~reps () in
  let load (r : Experiment.result) = r.Experiment.ctrl_load_up_mbps in
  let nb = Sweep.series_mean a.Figures.no_buffer load in
  let b16 = Sweep.series_mean a.Figures.buffer_16 load in
  let b256 = Sweep.series_mean a.Figures.buffer_256 load in
  (* The paper's Fig. 2(a) ordering at a mid rate. *)
  Alcotest.(check bool)
    (Printf.sprintf "no-buffer(%.1f) > buffer-16(%.1f) >= buffer-256(%.1f)" nb
       b16 b256)
    true
    (nb > b16 && b16 >= b256 -. 1e-9)

let test_ablations_smoke () =
  (* The studies must run end to end; their output goes to stdout. *)
  Ablations.buffer_sizing ~rates:[ 30.0 ] ~sizes:[ 8; 64 ] ~seed:2 ();
  Ablations.miss_send_len_sweep ~lengths:[ 64; 256 ] ~rate:30.0 ~seed:2 ();
  Ablations.release_strategy ~rate:30.0 ~seed:2 ();
  Ablations.resend_timeout_under_loss ~loss_rates:[ 0.05 ] ~timeouts:[ 0.02 ]
    ~seed:2 ();
  Ablations.rule_install_latency ~latencies:[ 0.2e-3 ] ~rate:60.0 ~seed:2 ()

(* The OpenFlow reply-xid contract: replies echo the request's id. *)
let test_switch_replies_echo_xid () =
  let open Sdn_sim in
  let open Sdn_openflow in
  let engine = Engine.create () in
  let switch =
    Sdn_switch.Switch.create engine ~config:Sdn_switch.Switch.default_config
      ~costs:Sdn_switch.Costs.default ~rng:(Rng.of_int 1) ()
  in
  let replies = ref [] in
  let ctrl =
    Link.create engine ~name:"c" ~bandwidth_bps:1e9 ~propagation_s:0.0
      ~receiver:(fun buf ->
        match Of_codec.decode buf with
        | Ok (xid, msg) -> replies := (xid, Of_codec.msg_type msg) :: !replies
        | Error e -> Alcotest.fail e)
      ()
  in
  Sdn_switch.Switch.set_controller_link switch ctrl;
  List.iter
    (fun (xid, msg) ->
      Sdn_switch.Switch.handle_of_message switch (Of_codec.encode ~xid msg))
    [
      (101l, Of_codec.Echo_request (Bytes.of_string "x"));
      (102l, Of_codec.Features_request);
      (103l, Of_codec.Get_config_request);
      (104l, Of_codec.Barrier_request);
      (105l, Of_codec.Stats_request Of_stats.Desc_request);
      (106l, Of_codec.Vendor Of_ext.Flow_buffer_stats_request);
    ];
  Engine.run engine;
  let sorted = List.sort compare !replies in
  Alcotest.(check (list (pair int32 string)))
    "every reply echoes its request xid"
    [
      (101l, "ECHO_REPLY"); (102l, "FEATURES_REPLY"); (103l, "GET_CONFIG_REPLY");
      (104l, "BARRIER_REPLY"); (105l, "STATS_REPLY"); (106l, "VENDOR");
    ]
    (List.map (fun (x, t) -> (x, Of_wire.Msg_type.to_string t)) sorted)

let test_config_labels () =
  Alcotest.(check string) "no-buffer" "no-buffer"
    (Config.label { Config.default with Config.mechanism = Config.No_buffer });
  Alcotest.(check string) "buffer-N" "buffer-64"
    (Config.label
       {
         Config.default with
         Config.mechanism = Config.Packet_granularity;
         buffer_capacity = 64;
       });
  Alcotest.(check string) "flow" "flow-granularity"
    (Config.label { Config.default with Config.mechanism = Config.Flow_granularity });
  Alcotest.(check int) "exp-a packet count" 1000
    (Config.packets_expected Config.default);
  Alcotest.(check int) "exp-b packet count" 1000
    (Config.packets_expected
       (Config.exp_b ~mechanism:Config.Flow_granularity ~rate_mbps:10.0 ~seed:1))

let tiny_result () =
  Experiment.run
    {
      (Config.exp_a ~mechanism:Config.Packet_granularity ~buffer_capacity:256
         ~rate_mbps:20.0 ~seed:7)
      with
      Config.workload = Config.Exp_a { n_flows = 5 };
    }

(* Aggregating zero repetitions must degrade to 0, not nan or a raise:
   an empty point can reach the plotting paths when a sweep is
   interrupted. *)
let test_sd_guard_empty () =
  let metric (r : Experiment.result) = r.Experiment.ctrl_load_up_mbps in
  let p = { Sweep.rate_mbps = 10.0; results = [] } in
  let series = { Sweep.label = "empty"; points = [ p ] } in
  Alcotest.(check (float 0.0)) "point_sd at n=0" 0.0 (Sweep.point_sd p metric);
  Alcotest.(check (float 0.0)) "series_sd at n=0" 0.0 (Sweep.series_sd series metric);
  Alcotest.(check (float 0.0)) "point_max at n=0" 0.0 (Sweep.point_max p metric);
  Alcotest.(check (float 0.0)) "series_max at n=0" 0.0 (Sweep.series_max series metric);
  Alcotest.(check (float 0.0)) "point_mean at n=0" 0.0 (Sweep.point_mean p metric)

(* The determinism contract behind the parallel-equivalence replay:
   byte-identity, so NaN equals NaN and infinities equal themselves —
   but any real field change is named. *)
let test_diff_result_edge_cases () =
  let r = tiny_result () in
  Alcotest.(check (list string)) "reflexive" [] (Experiment.diff_result r r);
  Alcotest.(check bool) "equal_result" true (Experiment.equal_result r r);
  let nan_sum = { r.Experiment.setup_delay with Experiment.sd = nan } in
  let r_nan = { r with Experiment.setup_delay = nan_sum } in
  Alcotest.(check (list string)) "NaN equals NaN" []
    (Experiment.diff_result r_nan r_nan);
  Alcotest.(check (list string)) "NaN vs finite differs" [ "setup_delay" ]
    (Experiment.diff_result r r_nan);
  let r_inf = { r with Experiment.controller_cpu_pct = infinity } in
  Alcotest.(check (list string)) "infinity equals infinity" []
    (Experiment.diff_result r_inf r_inf);
  Alcotest.(check (list string)) "infinity vs finite differs"
    [ "controller_cpu_pct" ]
    (Experiment.diff_result r r_inf);
  let r2 = { r with Experiment.pkt_ins = r.Experiment.pkt_ins + 1 } in
  Alcotest.(check (list string)) "int field named" [ "pkt_ins" ]
    (Experiment.diff_result r r2);
  (* Several differing fields are all reported. *)
  let r3 =
    {
      r with
      Experiment.pkt_ins = r.Experiment.pkt_ins + 1;
      send_window = r.Experiment.send_window +. 1.0;
    }
  in
  Alcotest.(check (list string)) "all diffs named"
    [ "pkt_ins"; "send_window" ]
    (List.sort compare (Experiment.diff_result r r3))

let suite =
  [
    Alcotest.test_case "sweep structure" `Quick test_sweep_structure;
    Alcotest.test_case "sd of an empty point is 0" `Quick test_sd_guard_empty;
    Alcotest.test_case "diff_result edge cases" `Quick
      test_diff_result_edge_cases;
    Alcotest.test_case "sweep seeds differ" `Quick test_sweep_seeds_differ_across_reps;
    Alcotest.test_case "sweep seed goldens" `Quick test_sweep_seed_derivation;
    Alcotest.test_case "sd of a single repetition is 0" `Quick
      test_sd_guard_single_rep;
    Alcotest.test_case "sweep aggregation" `Quick test_sweep_aggregates;
    Alcotest.test_case "csv export" `Quick test_csv_export_writes_all_figures;
    Alcotest.test_case "figure ordering invariant" `Quick
      test_figures_data_invariants;
    Alcotest.test_case "ablations run end to end" `Slow test_ablations_smoke;
    Alcotest.test_case "switch replies echo the request xid" `Quick
      test_switch_replies_echo_xid;
    Alcotest.test_case "config labels and counts" `Quick test_config_labels;
  ]
