type request =
  | Desc_request
  | Flow_request of { match_ : Of_match.t; table_id : int; out_port : int }
  | Aggregate_request of { match_ : Of_match.t; table_id : int; out_port : int }
  | Port_request of { port_no : int }

type flow_stats = {
  table_id : int;
  match_ : Of_match.t;
  duration_sec : int32;
  duration_nsec : int32;
  priority : int;
  idle_timeout : int;
  hard_timeout : int;
  cookie : int64;
  packet_count : int64;
  byte_count : int64;
  actions : Of_action.t list;
}

type port_stats = {
  port_no : int;
  rx_packets : int64;
  tx_packets : int64;
  rx_bytes : int64;
  tx_bytes : int64;
  rx_dropped : int64;
  tx_dropped : int64;
  rx_errors : int64;
  tx_errors : int64;
}

type desc = {
  mfr_desc : string;
  hw_desc : string;
  sw_desc : string;
  serial_num : string;
  dp_desc : string;
}

type reply =
  | Desc_reply of desc
  | Flow_reply of flow_stats list
  | Aggregate_reply of {
      packet_count : int64;
      byte_count : int64;
      flow_count : int32;
    }
  | Port_reply of port_stats list

let stats_type_desc = 0
let stats_type_flow = 1
let stats_type_aggregate = 2
let stats_type_port = 4

let flow_request_size = Of_match.size + 4
let port_request_size = 8
let flow_entry_fixed = 88
let port_entry_size = 104
let aggregate_reply_size = 24
let desc_reply_size = 256 + 256 + 256 + 32 + 256

(* Requests and replies share a 4-byte (type, flags) preamble. *)
let preamble = 4

let request_body_size = function
  | Desc_request -> preamble
  | Flow_request _ | Aggregate_request _ -> preamble + flow_request_size
  | Port_request _ -> preamble + port_request_size

let write_match_request ~stats_type ~match_ ~table_id ~out_port buf off =
  Bytes.set_uint16_be buf off stats_type;
  Bytes.set_uint16_be buf (off + 2) 0;
  Of_match.write match_ buf (off + preamble);
  Bytes.set_uint8 buf (off + preamble + Of_match.size) table_id;
  Bytes.set_uint8 buf (off + preamble + Of_match.size + 1) 0;
  Bytes.set_uint16_be buf (off + preamble + Of_match.size + 2) out_port

let write_request_body r buf off =
  match r with
  | Desc_request ->
      Bytes.set_uint16_be buf off stats_type_desc;
      Bytes.set_uint16_be buf (off + 2) 0
  | Flow_request { match_; table_id; out_port } ->
      write_match_request ~stats_type:stats_type_flow ~match_ ~table_id
        ~out_port buf off
  | Aggregate_request { match_; table_id; out_port } ->
      write_match_request ~stats_type:stats_type_aggregate ~match_ ~table_id
        ~out_port buf off
  | Port_request { port_no } ->
      Bytes.set_uint16_be buf off stats_type_port;
      Bytes.set_uint16_be buf (off + 2) 0;
      Bytes.fill buf (off + preamble) port_request_size '\000';
      Bytes.set_uint16_be buf (off + preamble) port_no

let read_match_request buf off ~len ~make =
  if len < preamble + flow_request_size then
    Error "Of_stats: truncated flow/aggregate request"
  else begin
    match Of_match.read buf (off + preamble) with
    | Error _ as e -> e
    | Ok match_ ->
        let table_id = Bytes.get_uint8 buf (off + preamble + Of_match.size) in
        let out_port =
          Bytes.get_uint16_be buf (off + preamble + Of_match.size + 2)
        in
        Ok (make match_ table_id out_port)
  end

let read_request_body buf off ~len =
  if len < preamble then Error "Of_stats: truncated request"
  else begin
    let stats_type = Bytes.get_uint16_be buf off in
    if stats_type = stats_type_desc then Ok Desc_request
    else if stats_type = stats_type_flow then
      read_match_request buf off ~len ~make:(fun match_ table_id out_port ->
          Flow_request { match_; table_id; out_port })
    else if stats_type = stats_type_aggregate then
      read_match_request buf off ~len ~make:(fun match_ table_id out_port ->
          Aggregate_request { match_; table_id; out_port })
    else if stats_type = stats_type_port then begin
      if len < preamble + port_request_size then
        Error "Of_stats: truncated port request"
      else Ok (Port_request { port_no = Bytes.get_uint16_be buf (off + preamble) })
    end
    else Error (Printf.sprintf "Of_stats: unknown stats type %d" stats_type)
  end

let flow_entry_size fs = flow_entry_fixed + Of_action.list_size fs.actions

(* OpenFlow 1.0 frames carry a 16-bit length, so one Flow_reply can
   hold only so many entries; a real switch continues past that with
   the OFPSF_REPLY_MORE multipart flag, which this codec does not
   model. Senders therefore truncate to the longest prefix that
   frames, rather than letting the length field wrap. *)
let max_flow_reply_body = 0xffff - Of_wire.header_size

let truncate_flow_entries entries =
  let rec keep acc size = function
    | [] -> entries (* everything fits: keep the original list *)
    | e :: rest ->
        let size = size + flow_entry_size e in
        if size > max_flow_reply_body then List.rev acc
        else keep (e :: acc) size rest
  in
  keep [] preamble entries

let reply_body_size = function
  | Desc_reply _ -> preamble + desc_reply_size
  | Flow_reply entries ->
      preamble + List.fold_left (fun acc e -> acc + flow_entry_size e) 0 entries
  | Aggregate_reply _ -> preamble + aggregate_reply_size
  | Port_reply entries -> preamble + (port_entry_size * List.length entries)

let write_padded_string s width buf off =
  Bytes.fill buf off width '\000';
  Bytes.blit_string s 0 buf off (min (String.length s) (width - 1))

let read_padded_string buf off width =
  let raw = Bytes.sub_string buf off width in
  match String.index_opt raw '\000' with
  | Some i -> String.sub raw 0 i
  | None -> raw

let write_flow_entry fs buf off =
  let n = flow_entry_size fs in
  Bytes.fill buf off n '\000';
  Bytes.set_uint16_be buf off n;
  Bytes.set_uint8 buf (off + 2) fs.table_id;
  Of_match.write fs.match_ buf (off + 4);
  let o = off + 4 + Of_match.size in
  Bytes.set_int32_be buf o fs.duration_sec;
  Bytes.set_int32_be buf (o + 4) fs.duration_nsec;
  Bytes.set_uint16_be buf (o + 8) fs.priority;
  Bytes.set_uint16_be buf (o + 10) fs.idle_timeout;
  Bytes.set_uint16_be buf (o + 12) fs.hard_timeout;
  (* 6 bytes pad *)
  Bytes.set_int64_be buf (o + 20) fs.cookie;
  Bytes.set_int64_be buf (o + 28) fs.packet_count;
  Bytes.set_int64_be buf (o + 36) fs.byte_count;
  ignore (Of_action.write_list fs.actions buf (o + 44))

let read_flow_entry buf off =
  let entry_len = Bytes.get_uint16_be buf off in
  if entry_len < flow_entry_fixed || off + entry_len > Bytes.length buf then
    Error "Of_stats: bad flow entry length"
  else begin
    match Of_match.read buf (off + 4) with
    | Error _ as e -> e
    | Ok match_ -> (
        let o = off + 4 + Of_match.size in
        match
          Of_action.read_list buf (o + 44) ~len:(entry_len - flow_entry_fixed)
        with
        | Error _ as e -> e
        | Ok actions ->
            Ok
              ( {
                  table_id = Bytes.get_uint8 buf (off + 2);
                  match_;
                  duration_sec = Bytes.get_int32_be buf o;
                  duration_nsec = Bytes.get_int32_be buf (o + 4);
                  priority = Bytes.get_uint16_be buf (o + 8);
                  idle_timeout = Bytes.get_uint16_be buf (o + 10);
                  hard_timeout = Bytes.get_uint16_be buf (o + 12);
                  cookie = Bytes.get_int64_be buf (o + 20);
                  packet_count = Bytes.get_int64_be buf (o + 28);
                  byte_count = Bytes.get_int64_be buf (o + 36);
                  actions;
                },
                off + entry_len ))
  end

let write_port_entry ps buf off =
  Bytes.fill buf off port_entry_size '\000';
  Bytes.set_uint16_be buf off ps.port_no;
  let set i v = Bytes.set_int64_be buf (off + 8 + (i * 8)) v in
  set 0 ps.rx_packets;
  set 1 ps.tx_packets;
  set 2 ps.rx_bytes;
  set 3 ps.tx_bytes;
  set 4 ps.rx_dropped;
  set 5 ps.tx_dropped;
  set 6 ps.rx_errors;
  set 7 ps.tx_errors

let read_port_entry buf off =
  let get i = Bytes.get_int64_be buf (off + 8 + (i * 8)) in
  {
    port_no = Bytes.get_uint16_be buf off;
    rx_packets = get 0;
    tx_packets = get 1;
    rx_bytes = get 2;
    tx_bytes = get 3;
    rx_dropped = get 4;
    tx_dropped = get 5;
    rx_errors = get 6;
    tx_errors = get 7;
  }

let write_reply_body r buf off =
  match r with
  | Desc_reply d ->
      Bytes.set_uint16_be buf off stats_type_desc;
      Bytes.set_uint16_be buf (off + 2) 0;
      let o = off + preamble in
      write_padded_string d.mfr_desc 256 buf o;
      write_padded_string d.hw_desc 256 buf (o + 256);
      write_padded_string d.sw_desc 256 buf (o + 512);
      write_padded_string d.serial_num 32 buf (o + 768);
      write_padded_string d.dp_desc 256 buf (o + 800)
  | Flow_reply entries ->
      Bytes.set_uint16_be buf off stats_type_flow;
      Bytes.set_uint16_be buf (off + 2) 0;
      let _ =
        List.fold_left
          (fun o e ->
            write_flow_entry e buf o;
            o + flow_entry_size e)
          (off + preamble) entries
      in
      ()
  | Aggregate_reply { packet_count; byte_count; flow_count } ->
      Bytes.set_uint16_be buf off stats_type_aggregate;
      Bytes.set_uint16_be buf (off + 2) 0;
      Bytes.set_int64_be buf (off + preamble) packet_count;
      Bytes.set_int64_be buf (off + preamble + 8) byte_count;
      Bytes.set_int32_be buf (off + preamble + 16) flow_count;
      Bytes.set_int32_be buf (off + preamble + 20) 0l
  | Port_reply entries ->
      Bytes.set_uint16_be buf off stats_type_port;
      Bytes.set_uint16_be buf (off + 2) 0;
      List.iteri
        (fun i e -> write_port_entry e buf (off + preamble + (i * port_entry_size)))
        entries

let read_reply_body buf off ~len =
  if len < preamble then Error "Of_stats: truncated reply"
  else begin
    let stats_type = Bytes.get_uint16_be buf off in
    let body_off = off + preamble in
    let body_len = len - preamble in
    if stats_type = stats_type_desc then begin
      if body_len < desc_reply_size then Error "Of_stats: truncated desc reply"
      else
        Ok
          (Desc_reply
             {
               mfr_desc = read_padded_string buf body_off 256;
               hw_desc = read_padded_string buf (body_off + 256) 256;
               sw_desc = read_padded_string buf (body_off + 512) 256;
               serial_num = read_padded_string buf (body_off + 768) 32;
               dp_desc = read_padded_string buf (body_off + 800) 256;
             })
    end
    else if stats_type = stats_type_flow then begin
      let stop = off + len in
      let rec loop acc o =
        if o = stop then Ok (Flow_reply (List.rev acc))
        else if o > stop then Error "Of_stats: flow entries overrun"
        else begin
          match read_flow_entry buf o with
          | Ok (e, next) -> loop (e :: acc) next
          | Error _ as e -> e
        end
      in
      loop [] body_off
    end
    else if stats_type = stats_type_aggregate then begin
      if body_len < aggregate_reply_size then
        Error "Of_stats: truncated aggregate reply"
      else
        Ok
          (Aggregate_reply
             {
               packet_count = Bytes.get_int64_be buf body_off;
               byte_count = Bytes.get_int64_be buf (body_off + 8);
               flow_count = Bytes.get_int32_be buf (body_off + 16);
             })
    end
    else if stats_type = stats_type_port then begin
      if body_len mod port_entry_size <> 0 then
        Error "Of_stats: ragged port reply"
      else begin
        let n = body_len / port_entry_size in
        let entries =
          List.init n (fun i -> read_port_entry buf (body_off + (i * port_entry_size)))
        in
        Ok (Port_reply entries)
      end
    end
    else Error (Printf.sprintf "Of_stats: unknown stats type %d" stats_type)
  end

let equal_request a b =
  match (a, b) with
  | Desc_request, Desc_request -> true
  | Flow_request x, Flow_request y ->
      Of_match.equal x.match_ y.match_
      && x.table_id = y.table_id && x.out_port = y.out_port
  | Aggregate_request x, Aggregate_request y ->
      Of_match.equal x.match_ y.match_
      && x.table_id = y.table_id && x.out_port = y.out_port
  | Port_request x, Port_request y -> x.port_no = y.port_no
  | (Desc_request | Flow_request _ | Aggregate_request _ | Port_request _), _ ->
      false

let equal_flow_stats a b =
  a.table_id = b.table_id
  && Of_match.equal a.match_ b.match_
  && Int32.equal a.duration_sec b.duration_sec
  && Int32.equal a.duration_nsec b.duration_nsec
  && a.priority = b.priority && a.idle_timeout = b.idle_timeout
  && a.hard_timeout = b.hard_timeout
  && Int64.equal a.cookie b.cookie
  && Int64.equal a.packet_count b.packet_count
  && Int64.equal a.byte_count b.byte_count
  && List.length a.actions = List.length b.actions
  && List.for_all2 Of_action.equal a.actions b.actions

let equal_reply a b =
  match (a, b) with
  | Desc_reply x, Desc_reply y -> x = y
  | Flow_reply x, Flow_reply y ->
      List.length x = List.length y && List.for_all2 equal_flow_stats x y
  | Aggregate_reply x, Aggregate_reply y ->
      Int64.equal x.packet_count y.packet_count
      && Int64.equal x.byte_count y.byte_count
      && Int32.equal x.flow_count y.flow_count
  | Port_reply x, Port_reply y -> x = y
  | (Desc_reply _ | Flow_reply _ | Aggregate_reply _ | Port_reply _), _ -> false

let pp_request fmt = function
  | Desc_request -> Format.pp_print_string fmt "stats_request{desc}"
  | Flow_request { match_; _ } ->
      Format.fprintf fmt "stats_request{flow %a}" Of_match.pp match_
  | Aggregate_request { match_; _ } ->
      Format.fprintf fmt "stats_request{aggregate %a}" Of_match.pp match_
  | Port_request { port_no } ->
      Format.fprintf fmt "stats_request{port %a}" Of_wire.Port.pp port_no

let pp_reply fmt = function
  | Desc_reply d -> Format.fprintf fmt "stats_reply{desc sw=%s}" d.sw_desc
  | Flow_reply entries ->
      Format.fprintf fmt "stats_reply{flow n=%d}" (List.length entries)
  | Aggregate_reply { packet_count; byte_count; flow_count } ->
      Format.fprintf fmt "stats_reply{aggregate pkts=%Ld bytes=%Ld flows=%ld}"
        packet_count byte_count flow_count
  | Port_reply entries ->
      Format.fprintf fmt "stats_reply{port n=%d}" (List.length entries)
