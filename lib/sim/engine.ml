type handle = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
  (* Heap backend: current slot in the owning heap, maintained by the
     heap's [set_index] callback; [-1] once popped, removed or never
     queued. Wheel backend: [0] while queued, [-1] once popped — the
     wheel has no per-element index, this only gates [note_cancel] to
     exactly one call per queued element. *)
  mutable heap_index : int;
  queue : queue;
}

and queue =
  | Q_heap of handle Heap.t
  | Q_wheel of handle Timer_wheel.t

type queue_kind = [ `Heap | `Wheel ]

type t = {
  mutable clock : float;
  mutable seq : int;
  mutable processed : int;
  queue : queue;
}

let compare_events a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(now = 0.0) ?(queue = `Heap) () =
  let queue =
    match queue with
    | `Heap ->
        Q_heap
          (Heap.create ~capacity:1024 ~cmp:compare_events
             ~set_index:(fun h i -> h.heap_index <- i)
             ())
    | `Wheel ->
        Q_wheel
          (Timer_wheel.create ~now
             ~time:(fun h -> h.time)
             ~seq:(fun h -> h.seq)
             ~cancelled:(fun h -> h.cancelled)
             ())
  in
  { clock = now; seq = 0; processed = 0; queue }

let now t = t.clock

let q_push q ev =
  match q with
  | Q_heap h -> Heap.push h ev
  | Q_wheel w ->
      ev.heap_index <- 0;
      Timer_wheel.add w ev

let q_peek q =
  match q with Q_heap h -> Heap.peek h | Q_wheel w -> Timer_wheel.peek w

let q_pop q =
  match q with
  | Q_heap h -> Heap.pop h
  | Q_wheel w -> (
      match Timer_wheel.pop w with
      | Some ev as r ->
          ev.heap_index <- -1;
          r
      | None -> None)

let q_length q =
  match q with Q_heap h -> Heap.length h | Q_wheel w -> Timer_wheel.length w

let schedule_at t time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time
         t.clock);
  let ev =
    { time; seq = t.seq; action; cancelled = false; heap_index = -1;
      queue = t.queue }
  in
  t.seq <- t.seq + 1;
  q_push t.queue ev;
  ev

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (t.clock +. delay) action

(* Heap backend: true O(log n) removal — a cancelled event leaves the
   heap immediately instead of lingering as a tombstone until popped.
   Long chaos runs cancel echo keepalives and backoff timers
   constantly; without real removal the queue grows monotonically and
   [pending] drifts away from the live event count. Wheel backend:
   O(1) lazy cancel — the wheel uncounts the event now and drops it
   whenever a cascade or its tick reaches it. *)
let cancel handle =
  if not handle.cancelled then begin
    handle.cancelled <- true;
    match handle.queue with
    | Q_heap h ->
        if handle.heap_index >= 0 then ignore (Heap.remove h handle.heap_index)
    | Q_wheel w ->
        if handle.heap_index >= 0 then begin
          handle.heap_index <- -1;
          Timer_wheel.note_cancel w
        end
  end

let is_cancelled handle = handle.cancelled

let exec t ev =
  t.processed <- t.processed + 1;
  ev.action ()

let step t =
  match q_pop t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      exec t ev;
      true

(* Dispatch every event carrying the earliest pending timestamp in one
   batch: the clock is advanced once and the events run back-to-back in
   seq order (including events an action schedules at that same
   instant), without re-checking any run limit in between. *)
let step_batch t =
  match q_pop t.queue with
  | None -> 0
  | Some ev ->
      t.clock <- ev.time;
      let time = ev.time in
      exec t ev;
      let count = ref 1 in
      let same_time = ref true in
      while !same_time do
        match q_peek t.queue with
        | Some next when Float.equal next.time time ->
            (match q_pop t.queue with
            | Some next ->
                exec t next;
                incr count
            | None -> same_time := false)
        | Some _ | None -> same_time := false
      done;
      !count

let rec run ?until t =
  match until with
  | None -> if step_batch t > 0 then run ?until t
  | Some limit -> (
      match q_peek t.queue with
      | None -> if t.clock < limit then t.clock <- limit
      | Some ev when ev.time > limit -> t.clock <- limit
      | Some _ ->
          (* The whole batch shares one timestamp <= limit, so no
             per-event limit check is needed. *)
          ignore (step_batch t);
          run ~until:limit t)

let pending t = q_length t.queue

let processed t = t.processed
