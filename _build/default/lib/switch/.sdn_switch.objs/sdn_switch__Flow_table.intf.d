lib/switch/flow_table.mli: Flow_entry Of_match Of_stats Packet Sdn_net Sdn_openflow
