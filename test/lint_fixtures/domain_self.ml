(* Dirty fixture: output depending on which domain ran the task. Must
   trip domain-self exactly once. *)

let task_tag () =
  Printf.sprintf "worker-%d" ((Domain.self () :> int) land 0xFFFF)
