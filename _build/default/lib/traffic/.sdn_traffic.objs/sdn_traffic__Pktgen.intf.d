lib/traffic/pktgen.mli: Bytes Engine Patterns Sdn_sim
