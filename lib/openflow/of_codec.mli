(** Top-level OpenFlow 1.0 message codec.

    [encode] produces the exact wire bytes (common header included);
    [decode] parses them back. Every byte the control channel carries
    in the reproduction goes through this module, so link-level byte
    counters measure real OpenFlow message sizes. *)

type msg =
  | Hello
  | Error_msg of Of_error.t
  | Echo_request of Bytes.t
  | Echo_reply of Bytes.t
  | Vendor of Of_ext.t
  | Features_request
  | Features_reply of Of_features.t
  | Get_config_request
  | Get_config_reply of Of_config.t
  | Set_config of Of_config.t
  | Packet_in of Of_packet_in.t
  | Flow_removed of Of_flow_removed.t
  | Port_status of Of_port_status.t
  | Packet_out of Of_packet_out.t
  | Flow_mod of Of_flow_mod.t
  | Stats_request of Of_stats.request
  | Stats_reply of Of_stats.reply
  | Barrier_request
  | Barrier_reply

val msg_type : msg -> Of_wire.Msg_type.t

val size : msg -> int
(** Encoded size including the 8-byte header. *)

val encode : xid:int32 -> msg -> Bytes.t

val encode_into : xid:int32 -> msg -> Bytes.t -> pos:int -> int
(** Encode at offset [pos] of a caller-owned buffer and return the
    encoded length — the allocation-free hot path. The window is
    zeroed first, so the bytes produced are identical to [encode]'s
    even into a dirty buffer. Raises [Invalid_argument] when the
    buffer cannot hold {!size} bytes at [pos]. *)

val encode_scratch : Of_wire.Scratch.t -> xid:int32 -> msg -> int
(** Encode into a reusable scratch buffer, growing it if needed;
    returns the encoded length. The bytes live at offset 0 of
    [Of_wire.Scratch.buffer] until the next encode. Steady-state cost
    is the header+body writes only — zero per-message allocation (a
    result pair would be the last minor-heap word on the path, so the
    buffer is not returned). *)

val decode : Bytes.t -> (int32 * msg, string) result
(** Parse one message from the start of the buffer; the buffer must be
    exactly one message long (as delivered by the simulated channel). *)

val decode_sub : Bytes.t -> pos:int -> len:int -> (int32 * msg, string) result
(** Parse one message in place at offset [pos] of a [len]-byte window —
    what the stream reassembler uses, avoiding a copy of every message
    out of its receive buffer. Trailing bytes beyond the header's
    length field are ignored. *)

val peek_type : Bytes.t -> (Of_wire.Msg_type.t, string) result
(** Cheap classification of an encoded message without a full parse —
    what the capture/metrics layer uses per sniffed message. *)

type error_kind =
  | Truncated  (** buffer shorter than the header, or the length field lies *)
  | Bad_version of int  (** wire version other than 0x01 *)
  | Bad_type of int  (** unknown (or unimplemented) message type byte *)
  | Bad_body  (** header fine, body failed to parse *)

val error_kind : Bytes.t -> error_kind
(** Classify why [decode] failed on this buffer, by re-inspecting the raw
    bytes. Only meaningful when [decode] returned [Error _]; endpoints use
    it to pick the OFPT_ERROR type/code mandated by the 1.0 spec
    (truncation → [Bad_request]/[bad_len], unknown type →
    [Bad_request]/[bad_type], version mismatch →
    [Hello_failed]/[incompatible]). *)

val error_kind_to_string : error_kind -> string

val peek_xid : Bytes.t -> int32
(** Best-effort xid extraction from a (possibly malformed) buffer: the
    header xid field when at least 8 bytes are present, [0l] otherwise.
    Used to echo the offender's xid back inside an OFPT_ERROR. *)

val equal : msg -> msg -> bool
val pp : Format.formatter -> msg -> unit
