(* Fixture: exactly one partial-exit finding. *)

let unreachable () = assert false
