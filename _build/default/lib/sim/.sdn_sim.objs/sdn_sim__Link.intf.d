lib/sim/link.mli: Engine Rng
