open Sdn_net

type key = {
  in_port : int;
  dl_src : Mac.t;
  dl_dst : Mac.t;
  nw_tos : int;
  flow : Flow_key.t;
}

(* The key must cover every packet field Of_match.matches can consult:
   in_port, both MACs, the ToS byte, and the 5-tuple. dl_type is
   implied (a flow key only exists for IPv4 TCP/UDP), and dl_vlan never
   matches a simulated packet (Packet.t carries no VLAN tag), so two
   packets with equal keys are indistinguishable to every rule. *)
let key_of_packet ~in_port (pkt : Packet.t) =
  match (Packet.flow_key pkt, pkt.Packet.l3) with
  | Some flow, Packet.Ipv4 (ip, _) ->
      Some
        {
          in_port;
          dl_src = pkt.Packet.eth.Ethernet.src;
          dl_dst = pkt.Packet.eth.Ethernet.dst;
          nw_tos = ip.Ipv4.tos;
          flow;
        }
  | (Some _ | None), _ -> None

let key_equal a b =
  a.in_port = b.in_port && a.nw_tos = b.nw_tos
  && Mac.equal a.dl_src b.dl_src
  && Mac.equal a.dl_dst b.dl_dst
  && Flow_key.equal a.flow b.flow

let key_hash k =
  let h = ref k.in_port in
  let mix x = h := (!h * 131) + x in
  mix (Mac.hash k.dl_src);
  mix (Mac.hash k.dl_dst);
  mix k.nw_tos;
  mix (Flow_key.hash k.flow);
  !h land max_int

let pp_key fmt k =
  Format.fprintf fmt "port=%d %a->%a tos=%d %a" k.in_port Mac.pp k.dl_src
    Mac.pp k.dl_dst k.nw_tos Flow_key.pp k.flow

module Key_tbl = Hashtbl.Make (struct
  type t = key

  let equal = key_equal
  let hash = key_hash
end)

type 'v t = {
  capacity : int;
  table : 'v Key_tbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
}

let create ?(capacity = 8192) () =
  if capacity <= 0 then invalid_arg "Microflow.create: capacity";
  { capacity; table = Key_tbl.create 256; hits = 0; misses = 0; flushes = 0 }

let find t key =
  match Key_tbl.find_opt t.table key with
  | Some _ as v ->
      t.hits <- t.hits + 1;
      v
  | None ->
      t.misses <- t.misses + 1;
      None

let flush t =
  if Key_tbl.length t.table > 0 then begin
    Key_tbl.reset t.table;
    t.flushes <- t.flushes + 1
  end

let add t key v =
  (* Whole-cache reset on overflow: crude but deterministic, and the
     steady state (a working set far below capacity) never hits it. *)
  if Key_tbl.length t.table >= t.capacity then flush t;
  Key_tbl.replace t.table key v

let length t = Key_tbl.length t.table
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses
let flushes t = t.flushes
