type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable samples : float array;
  mutable sample_count : int;
  keep_samples : bool;
}

let create ?(keep_samples = true) () =
  {
    count = 0;
    mean = 0.0;
    m2 = 0.0;
    sum = 0.0;
    min_v = nan;
    max_v = nan;
    samples = (if keep_samples then Array.make 16 0.0 else [||]);
    sample_count = 0;
    keep_samples;
  }

let store_sample t x =
  if t.keep_samples then begin
    if t.sample_count = Array.length t.samples then begin
      let bigger = Array.make (2 * Stdlib.max 1 (Array.length t.samples)) 0.0 in
      Array.blit t.samples 0 bigger 0 t.sample_count;
      t.samples <- bigger
    end;
    t.samples.(t.sample_count) <- x;
    t.sample_count <- t.sample_count + 1
  end

let add t x =
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.count = 1 then begin
    t.min_v <- x;
    t.max_v <- x
  end
  else begin
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x
  end;
  store_sample t x

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else t.mean

let variance t =
  if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)

let stddev t = sqrt (variance t)
let min t = t.min_v
let max t = t.max_v

let samples t = Array.sub t.samples 0 t.sample_count

let percentile t p =
  if not t.keep_samples then
    invalid_arg "Stats.percentile: samples were not kept";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  if t.sample_count = 0 then nan
  else
  let sorted = samples t in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median t = percentile t 50.0

let merge a b =
  let keep = a.keep_samples && b.keep_samples in
  let t = create ~keep_samples:keep () in
  if a.count + b.count > 0 then begin
    let na = float_of_int a.count and nb = float_of_int b.count in
    let n = na +. nb in
    let delta = b.mean -. a.mean in
    t.count <- a.count + b.count;
    t.sum <- a.sum +. b.sum;
    t.mean <- ((na *. a.mean) +. (nb *. b.mean)) /. n;
    t.m2 <- a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. n);
    t.min_v <-
      (if a.count = 0 then b.min_v
       else if b.count = 0 then a.min_v
       else Stdlib.min a.min_v b.min_v);
    t.max_v <-
      (if a.count = 0 then b.max_v
       else if b.count = 0 then a.max_v
       else Stdlib.max a.max_v b.max_v);
    if keep then begin
      Array.iter (store_sample t) (samples a);
      Array.iter (store_sample t) (samples b)
    end
  end;
  t

let clear t =
  t.count <- 0;
  t.mean <- 0.0;
  t.m2 <- 0.0;
  t.sum <- 0.0;
  t.min_v <- nan;
  t.max_v <- nan;
  t.sample_count <- 0

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g" t.count
    (mean t) (stddev t) t.min_v t.max_v
