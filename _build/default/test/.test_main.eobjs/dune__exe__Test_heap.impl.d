test/test_heap.ml: Alcotest Heap List QCheck QCheck_alcotest Sdn_sim
