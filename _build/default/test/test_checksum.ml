(* Tests for the RFC 1071 Internet checksum. *)

open Sdn_net

let test_rfc1071_example () =
  (* The classic example from RFC 1071 section 3. *)
  let buf =
    Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7"
  in
  Alcotest.(check int) "running sum" 0xddf2 (Checksum.sum buf 0 8);
  Alcotest.(check int) "checksum" (lnot 0xddf2 land 0xFFFF)
    (Checksum.over buf 0 8)

let test_odd_length_padded () =
  let buf = Bytes.of_string "\xab" in
  (* A single byte is treated as 0xab00. *)
  Alcotest.(check int) "sum" 0xab00 (Checksum.sum buf 0 1)

let test_verify_self_checksummed_region () =
  let buf = Bytes.make 12 '\000' in
  Bytes.set_uint16_be buf 0 0x1234;
  Bytes.set_uint16_be buf 2 0xabcd;
  Bytes.set_uint16_be buf 8 0x0001;
  let csum = Checksum.over buf 0 12 in
  Bytes.set_uint16_be buf 4 csum;
  Alcotest.(check bool) "verifies" true (Checksum.verify buf 0 12);
  Bytes.set_uint16_be buf 8 0x0002;
  Alcotest.(check bool) "corruption detected" false (Checksum.verify buf 0 12)

let test_add_carries () =
  Alcotest.(check int) "end-around carry" 2 (Checksum.add 0xFFFF 2);
  Alcotest.(check int) "no carry" 0x0005 (Checksum.add 2 3)

let test_bounds_checked () =
  let buf = Bytes.create 4 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Checksum.sum buf 2 4);
       false
     with Invalid_argument _ -> true)

let prop_incremental_split =
  (* Summing a region equals combining the sums of an even-length
     prefix and the remaining suffix. *)
  QCheck.Test.make ~name:"checksum splits at even offsets" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 2 64)) small_int)
    (fun (s, k) ->
      let buf = Bytes.of_string s in
      let n = Bytes.length buf in
      let split = min (2 * (k mod ((n / 2) + 1))) n in
      let whole = Checksum.sum buf 0 n in
      let parts =
        Checksum.add (Checksum.sum buf 0 split)
          (Checksum.sum buf split (n - split))
      in
      whole = parts)

let prop_detects_single_flip =
  QCheck.Test.make ~name:"single 16-bit word flip changes checksum" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.return 16)) (int_bound 7))
    (fun (s, word) ->
      let buf = Bytes.of_string s in
      let before = Checksum.over buf 0 16 in
      let v = Bytes.get_uint16_be buf (2 * word) in
      Bytes.set_uint16_be buf (2 * word) (v lxor 0x5555);
      let after = Checksum.over buf 0 16 in
      before <> after)

let suite =
  [
    Alcotest.test_case "RFC 1071 example" `Quick test_rfc1071_example;
    Alcotest.test_case "odd trailing byte" `Quick test_odd_length_padded;
    Alcotest.test_case "verify self-checksummed region" `Quick
      test_verify_self_checksummed_region;
    Alcotest.test_case "carry folding in add" `Quick test_add_carries;
    Alcotest.test_case "bounds checked" `Quick test_bounds_checked;
    QCheck_alcotest.to_alcotest prop_incremental_split;
    QCheck_alcotest.to_alcotest prop_detects_single_flip;
  ]
