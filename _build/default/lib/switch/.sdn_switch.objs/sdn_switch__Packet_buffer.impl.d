lib/switch/packet_buffer.ml: Array Bytes Engine Int32 List Sdn_sim Timeseries
