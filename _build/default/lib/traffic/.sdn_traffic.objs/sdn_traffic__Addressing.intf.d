lib/traffic/addressing.mli: Flow_key Ip Mac Sdn_net
